"""Tests for the Session service: execution routing, caching, resumability."""

from __future__ import annotations

import json

import pytest

from repro.scenarios import ResultStore, Scenario, Session


def scenario(text: str = "one-fail-adaptive k=60 reps=3 seed=7") -> Scenario:
    return Scenario.parse(text)


class TestSessionExecution:
    def test_run_returns_all_replications(self):
        result_set = Session().run(scenario())
        assert len(result_set.results) == 3
        assert result_set.new_runs == 3
        assert result_set.cached_runs == 0
        assert result_set.all_solved
        assert result_set.seeds == tuple(scenario().seeds())
        assert [result.seed for result in result_set.results] == list(result_set.seeds)

    def test_batch_routing_for_eligible_cells(self):
        assert Session().run(scenario()).engine_used == "mega"
        assert Session(fuse=False).run(scenario()).engine_used == "batch"
        assert Session(batch=False).run(scenario()).engine_used == "fair"

    def test_windowed_protocol_batch_routing(self):
        result_set = Session().run(scenario("exp-backon-backoff k=60 reps=2 seed=7"))
        assert result_set.engine_used == "mega-window"
        result_set = Session(fuse=False).run(scenario("exp-backon-backoff k=60 reps=2 seed=7"))
        assert result_set.engine_used == "batch-window"
        result_set = Session(batch=False).run(scenario("exp-backon-backoff k=60 reps=2 seed=7"))
        assert result_set.engine_used == "window"

    def test_dynamic_arrivals_route_to_slot_engine(self):
        result_set = Session().run(
            scenario("one-fail-adaptive k=16 reps=2 seed=7 arrivals=poisson(rate=0.2)")
        )
        assert result_set.engine_used == "slot"
        assert "latencies" in result_set.results[0].metadata

    def test_explicit_engine_honoured(self):
        result_set = Session().run(scenario("one-fail-adaptive k=30 reps=2 seed=7 engine=slot"))
        assert result_set.engine_used == "slot"

    def test_deterministic_across_sessions(self):
        first = Session().run(scenario())
        second = Session().run(scenario())
        assert first.makespans == second.makespans

    def test_run_all_orders_results(self):
        scenarios = [scenario(), scenario("exp-backon-backoff k=40 reps=2 seed=3")]
        result_sets = Session().run_all(scenarios)
        assert [rs.scenario for rs in result_sets] == scenarios

    def test_progress_reports_every_replication(self):
        calls = []
        Session().run(scenario(), progress=lambda i, s, done, total: calls.append((i, done, total)))
        assert calls == [(0, 1, 3), (0, 2, 3), (0, 3, 3)]

    def test_to_dict_payload(self):
        payload = Session().run(scenario()).to_dict()
        assert payload["new_runs"] == 3
        assert payload["cached_runs"] == 0
        assert payload["engine"] == "mega"
        assert len(payload["results"]) == 3
        assert payload["hash"] == scenario().content_hash()
        json.dumps(payload)  # must be JSON-serialisable as-is


class TestSessionStore:
    def test_repeat_run_is_all_cache_hits(self, tmp_path):
        session = Session(store_dir=tmp_path)
        first = session.run(scenario())
        second = session.run(scenario())
        assert first.new_runs == 3 and first.cached_runs == 0
        assert second.new_runs == 0 and second.cached_runs == 3
        assert second.makespans == first.makespans
        assert [r.seed for r in second.results] == [r.seed for r in first.results]

    def test_store_survives_session_objects(self, tmp_path):
        Session(store_dir=tmp_path).run(scenario())
        resumed = Session(store_dir=tmp_path).run(scenario())
        assert resumed.new_runs == 0

    def test_raising_replications_extends_per_run_cell(self, tmp_path):
        # Per-run streams are prefix-stable, so a larger request reuses the
        # stored prefix and runs only the new replications.
        session = Session(store_dir=tmp_path, batch=False)
        small = session.run(scenario())
        extended = session.run(scenario().replace(replications=5))
        assert extended.cached_runs == 3
        assert extended.new_runs == 2
        assert extended.makespans[:3] == small.makespans
        fresh = Session(batch=False).run(scenario().replace(replications=5))
        assert extended.makespans == fresh.makespans

    def test_raising_replications_recomputes_batch_cell(self, tmp_path):
        # A batch cell's results depend on the batch composition (one
        # interleaved stream per engine call), so extension recomputes the
        # whole cell — the resumed result is bit-identical to a fresh run.
        session = Session(store_dir=tmp_path, batch=True)
        session.run(scenario())
        extended = session.run(scenario().replace(replications=5))
        assert extended.cached_runs == 0
        assert extended.new_runs == 5
        fresh = Session(batch=True).run(scenario().replace(replications=5))
        assert extended.makespans == fresh.makespans
        # The recomputed batch is now on record for its own replication count.
        again = session.run(scenario().replace(replications=5))
        assert again.new_runs == 0 and again.cached_runs == 5

    def test_interrupted_grid_resumes_missing_cells_only(self, tmp_path):
        grid = [
            scenario("one-fail-adaptive k=40 reps=2 seed=1"),
            scenario("one-fail-adaptive k=80 reps=2 seed=2"),
            scenario("exp-backon-backoff k=40 reps=2 seed=3"),
        ]
        # First session dies after completing only the first cell.
        Session(store_dir=tmp_path).run(grid[0])
        result_sets = Session(store_dir=tmp_path).run_all(grid)
        assert [rs.new_runs for rs in result_sets] == [0, 2, 2]
        assert [rs.cached_runs for rs in result_sets] == [2, 0, 0]
        # The resumed grid is identical to an uninterrupted in-memory run.
        fresh = Session().run_all(grid)
        assert [rs.makespans for rs in result_sets] == [rs.makespans for rs in fresh]

    def test_cached_results_are_equal_to_fresh(self, tmp_path):
        session = Session(store_dir=tmp_path)
        fresh = session.run(scenario())
        cached = session.run(scenario())
        for a, b in zip(fresh.results, cached.results):
            assert a.makespan == b.makespan
            assert a.seed == b.seed
            assert a.collisions == b.collisions
            assert a.engine == b.engine

    def test_torn_store_line_is_ignored(self, tmp_path):
        session = Session(store_dir=tmp_path)
        session.run(scenario())
        store_file = next(tmp_path.glob("*.jsonl"))
        with store_file.open("a", encoding="utf-8") as handle:
            handle.write('{"kind": "run", "replication": 99, "seed"')  # torn write
        resumed = session.run(scenario())
        assert resumed.new_runs == 0 and resumed.cached_runs == 3

    def test_torn_tail_heals_on_next_append(self, tmp_path):
        # A torn final line must not swallow the record appended after it:
        # the store heals by terminating the partial line first.  (Per-run
        # mode: batch cells recover all-or-nothing instead.)
        session = Session(store_dir=tmp_path, batch=False)
        session.run(scenario())
        store_file = next(tmp_path.glob("*.jsonl"))
        content = store_file.read_text(encoding="utf-8")
        torn = content.rstrip("\n").rsplit("\n", 1)[0] + '\n{"kind": "run", "rep'
        store_file.write_text(torn, encoding="utf-8")  # last record torn mid-write
        healed = session.run(scenario())
        assert healed.new_runs == 1 and healed.cached_runs == 2
        settled = session.run(scenario())
        assert settled.new_runs == 0 and settled.cached_runs == 3

    def test_cached_runs_clamped_to_requested_replications(self, tmp_path):
        session = Session(store_dir=tmp_path, batch=False)
        session.run(scenario().replace(replications=6))
        small = session.run(scenario().replace(replications=2))
        assert small.cached_runs == 2
        assert small.new_runs == 0
        assert len(small.results) == 2

    def test_store_never_mixes_batch_and_per_run_streams(self, tmp_path):
        # The hash ignores the sampling mode, so a store written under one
        # mode must be recomputed — not partially reused — under the other.
        per_run = Session(store_dir=tmp_path, batch=False).run(scenario())
        assert per_run.engine_used == "fair"
        batched = Session(store_dir=tmp_path, batch=True).run(
            scenario().replace(replications=5)
        )
        assert batched.cached_runs == 0 and batched.new_runs == 5
        assert {result.engine for result in batched.results} == {"mega"}
        fresh_batched = Session(batch=True).run(scenario().replace(replications=5))
        assert batched.makespans == fresh_batched.makespans
        # Flipping back serves the per-run records written first... or
        # recomputes them; either way the set is engine-uniform and identical
        # to an uncached per-run execution.
        per_run_again = Session(store_dir=tmp_path, batch=False).run(scenario())
        assert {result.engine for result in per_run_again.results} == {"fair"}
        assert per_run_again.makespans == per_run.makespans

    def test_foreign_seed_record_recomputed(self, tmp_path):
        session = Session(store_dir=tmp_path, batch=False)
        session.run(scenario())
        store_file = next(tmp_path.glob("*.jsonl"))
        lines = store_file.read_text(encoding="utf-8").splitlines()
        record = json.loads(lines[1])
        record["seed"] = record["seed"] + 1  # corrupt one replication's seed
        lines[1] = json.dumps(record)
        store_file.write_text("\n".join(lines) + "\n", encoding="utf-8")
        resumed = session.run(scenario())
        assert resumed.new_runs == 1 and resumed.cached_runs == 2

    def test_store_file_is_self_describing(self, tmp_path):
        Session(store_dir=tmp_path).run(scenario())
        store = ResultStore(tmp_path)
        on_record = store.scenarios_on_record()
        assert on_record == [scenario()]

    def test_different_scenarios_use_different_files(self, tmp_path):
        session = Session(store_dir=tmp_path)
        session.run(scenario())
        session.run(scenario("one-fail-adaptive k=60 reps=3 seed=8"))
        assert len(list(tmp_path.glob("*.jsonl"))) == 2

    def test_progress_includes_cached_replications(self, tmp_path):
        session = Session(store_dir=tmp_path)
        session.run(scenario())
        calls = []
        session.run(scenario(), progress=lambda i, s, done, total: calls.append((done, total)))
        assert calls == [(1, 3), (2, 3), (3, 3)]

    def test_elapsed_seconds_preserved_from_store(self, tmp_path):
        session = Session(store_dir=tmp_path)
        fresh = session.run(scenario())
        cached = session.run(scenario())
        assert cached.elapsed_seconds == pytest.approx(fresh.elapsed_seconds)
        assert cached.elapsed_seconds > 0


class TestSweepStoreIntegration:
    def test_run_sweep_store_round_trip(self, tmp_path):
        from repro.experiments.config import ExperimentConfig, paper_protocol_suite
        from repro.experiments.runner import run_sweep

        config = ExperimentConfig(k_values=[10, 30], runs=2, seed=77)
        specs = paper_protocol_suite(include_lfa=False, include_llib=False)
        stored = run_sweep(specs, config, store_dir=tmp_path)
        resumed = run_sweep(specs, config, store_dir=tmp_path)
        in_memory = run_sweep(specs, config)
        for key in stored.cells:
            assert stored.cells[key].makespans == in_memory.cells[key].makespans
            assert resumed.cells[key].makespans == in_memory.cells[key].makespans
        # Every (spec, k) cell produced one store file; the resumed sweep
        # added nothing new.
        assert len(list(tmp_path.glob("*.jsonl"))) == len(stored.cells)
