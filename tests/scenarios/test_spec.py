"""Tests for the spec-string grammar shared by all registries."""

from __future__ import annotations

import pytest

from repro.scenarios.spec import (
    SpecError,
    canonical_spec,
    format_spec,
    parse_spec,
    split_top_level,
)


class TestParseSpec:
    def test_bare_name(self):
        assert parse_spec("one-fail-adaptive") == ("one-fail-adaptive", {})

    def test_empty_parens(self):
        assert parse_spec("one-fail-adaptive()") == ("one-fail-adaptive", {})

    def test_typed_values(self):
        name, params = parse_spec("proto(a=1, b=2.5, c=true, d=false, e=text)")
        assert name == "proto"
        assert params == {"a": 1, "b": 2.5, "c": True, "d": False, "e": "text"}
        assert isinstance(params["a"], int) and not isinstance(params["a"], bool)

    def test_quoted_string_value(self):
        assert parse_spec('p(s="hello world")')[1] == {"s": "hello world"}

    def test_scientific_float(self):
        assert parse_spec("p(eps=1e-3)")[1] == {"eps": 0.001}

    @pytest.mark.parametrize(
        "bad",
        ["", "p(", "p(a)", "p(a=1,,b=2)", "p(a=1", "(a=1)", "p(1x=2)", "p(a=1,a=2)", "9p"],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(SpecError):
            parse_spec(bad)


class TestFormatSpec:
    def test_bare(self):
        assert format_spec("aloha") == "aloha"
        assert format_spec("aloha", {}) == "aloha"

    def test_sorted_params(self):
        assert format_spec("p", {"b": 2, "a": 1}) == "p(a=1,b=2)"

    def test_round_trip(self):
        for spec in [
            "one-fail-adaptive(delta=2.72)",
            "log-fails-adaptive(xi_beta=0.1,xi_delta=0.1,xi_t=0.5)",
            "bursty(bursts=4,gap=100)",
            "p(flag=true)",
        ]:
            assert format_spec(*parse_spec(spec)) == spec

    def test_quoted_values_with_delimiters_round_trip(self):
        for value in ["a,b", "a b", "has(parens)", "x=y", 'double"quote', "single'quote"]:
            rendered = format_spec("p", {"s": value})
            assert parse_spec(rendered) == ("p", {"s": value})

    def test_mixed_quotes_rejected(self):
        with pytest.raises(SpecError):
            format_spec("p", {"s": "both\"'quotes"})

    def test_unterminated_quote_rejected(self):
        with pytest.raises(SpecError):
            parse_spec('p(s="open)')

    def test_canonical_spec_normalises(self):
        assert canonical_spec("p( b = 2 , a = 1 )") == "p(a=1,b=2)"
        assert canonical_spec("p()") == "p"


class TestSplitTopLevel:
    def test_ignores_whitespace_inside_parens(self):
        tokens = split_top_level("ofa k=10 arrivals=bursty(bursts=2, gap=9)")
        assert tokens == ["ofa", "k=10", "arrivals=bursty(bursts=2, gap=9)"]

    def test_unbalanced_rejected(self):
        with pytest.raises(SpecError):
            split_top_level("ofa k=10 arrivals=bursty(bursts=2")
