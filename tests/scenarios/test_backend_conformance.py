"""Backend-conformance suite: every registered store backend, one contract.

Each test in :class:`TestBackendContract` runs parametrized over *all*
registered backends (``available_store_backends()`` is asserted against the
parametrization, so registering a third backend without adding it here fails
loudly).  The contract covers round-trips, last-write-wins, torn/corrupt
input tolerance, threaded and multiprocess append safety, Session resume,
compaction, and cross-backend federation sync — disk↔disk in every
direction, plus client↔server over a live service.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import pytest

from repro.engine.result import SimulationResult
from repro.scenarios import (
    JsonlStore,
    Scenario,
    Session,
    SqliteStore,
    StoreBackend,
    StoredRun,
    available_store_backends,
    open_store,
    parse_store_spec,
    sync_stores,
)

SPEC = "one-fail-adaptive k=32 reps=4 seed=3"

#: backend name -> spec builder; must cover every registered backend.
#: The chaos entry carries no fault options, so it must behave as a
#: transparent proxy over its inner store — that equivalence *is* the test.
BACKEND_SPECS = {
    "jsonl": lambda tmp: f"jsonl:{tmp / 'store'}",
    "sqlite": lambda tmp: f"sqlite:{tmp / 'store.db'}",
    "chaos": lambda tmp: f"chaos:jsonl:{tmp / 'chaos_store'}?seed=1",
}
BACKENDS = sorted(BACKEND_SPECS)


def scenario(text: str = SPEC) -> Scenario:
    return Scenario.parse(text)


def make_run(replication: int, seed: int, *, engine: str = "fair") -> StoredRun:
    result = SimulationResult(
        solved=True,
        makespan=100 + replication,
        k=32,
        slots_simulated=100 + replication,
        successes=32,
        collisions=1,
        silences=2,
        protocol="one-fail-adaptive",
        engine=engine,
        seed=seed,
        metadata={},
    )
    return StoredRun(replication=replication, seed=seed, elapsed_seconds=0.01, result=result)


def seeded_runs(scen: Scenario, replications: range | None = None) -> list[StoredRun]:
    seeds = scen.seeds()
    indices = replications if replications is not None else range(scen.replications)
    return [make_run(replication, seeds[replication]) for replication in indices]


def corrupt_one_replication(spec: str, scen: Scenario, replication: int) -> None:
    """Backend-specific corruption: make one stored record unreadable."""
    name, location = parse_store_spec(spec)
    if name == "chaos":  # corrupt the wrapped store (strip the chaos params)
        corrupt_one_replication(location.rpartition("?")[0], scen, replication)
        return
    if name == "jsonl":
        path = Path(location) / f"{scen.content_hash()}.jsonl"
        lines = path.read_text(encoding="utf-8").splitlines()
        kept = []
        for line in lines:
            record = json.loads(line)
            if record.get("kind") == "run" and record["replication"] == replication:
                kept.append(line[: len(line) // 2])  # torn mid-record
            else:
                kept.append(line)
        path.write_text("\n".join(kept) + "\n", encoding="utf-8")
    else:
        with sqlite3.connect(location.partition("?")[0]) as connection:
            connection.execute(
                "UPDATE runs SET result_json = '{\"garbage\"' WHERE hash = ? AND replication = ?",
                (scen.content_hash(), replication),
            )


def _append_via_spec(spec: str, start: int, count: int) -> None:
    """Module-level so ProcessPoolExecutor can pickle it."""
    store = open_store(spec)
    # Seeds are prefix-stable, so the 80-replication derivation is valid for
    # every writer regardless of which slice it appends.
    seeds = scenario().replace(replications=80).seeds()
    for replication in range(start, start + count):
        store.append(scenario(), [make_run(replication, seeds[replication])])
    store.close()


def test_parametrization_covers_every_registered_backend():
    assert tuple(BACKENDS) == available_store_backends()


@pytest.fixture(params=BACKENDS)
def backend_spec(request, tmp_path) -> str:
    return BACKEND_SPECS[request.param](tmp_path)


@pytest.fixture
def store(backend_spec) -> StoreBackend:
    store = open_store(backend_spec)
    yield store
    store.close()


class TestBackendContract:
    def test_open_store_resolves_the_spec(self, backend_spec, store):
        name, _ = parse_store_spec(backend_spec)
        assert store.name == name
        assert parse_store_spec(store.describe())[0] == name

    def test_empty_store(self, store):
        assert store.load(scenario()) == {}
        assert store.cached_count(scenario()) == 0
        assert store.run_index(scenario()) == {}
        assert store.scenarios_on_record() == []
        assert store.summaries() == []

    def test_append_load_round_trip(self, store):
        runs = seeded_runs(scenario())
        store.append(scenario(), runs)
        loaded = store.load(scenario())
        assert sorted(loaded) == [0, 1, 2, 3]
        for run in runs:
            stored = loaded[run.replication]
            assert stored.seed == run.seed
            assert stored.result.makespan == run.result.makespan
            assert stored.result.engine == run.result.engine
            assert stored.elapsed_seconds == pytest.approx(run.elapsed_seconds)

    def test_duplicate_append_is_last_write_wins(self, store):
        seeds = scenario().seeds()
        store.append(scenario(), [make_run(0, seeds[0], engine="fair")])
        store.append(scenario(), [make_run(0, seeds[0], engine="slot")])
        loaded = store.load(scenario())
        assert len(loaded) == 1
        assert loaded[0].result.engine == "slot"

    def test_foreign_seed_records_read_as_missing(self, store):
        seeds = scenario().seeds()
        store.append(scenario(), [make_run(0, seeds[0]), make_run(1, seeds[1] + 99)])
        assert sorted(store.load(scenario())) == [0]

    def test_cached_count_counts_valid_replications_below_request(self, store):
        assert store.cached_count(scenario()) == 0
        store.append(scenario(), seeded_runs(scenario()))
        assert store.cached_count(scenario()) == 4
        # A smaller request counts only its own replications...
        assert store.cached_count(scenario().replace(replications=2)) == 2
        # ...and a larger one sees the stored prefix (seeds are prefix-stable).
        assert store.cached_count(scenario().replace(replications=6)) == 4

    def test_run_index_agrees_with_load(self, store):
        store.append(scenario(), seeded_runs(scenario()))
        index = store.run_index(scenario())
        loaded = store.load(scenario())
        assert sorted(index) == sorted(loaded)
        for replication, meta in index.items():
            assert meta.seed == loaded[replication].seed
            assert meta.engine == loaded[replication].result.engine

    def test_scenarios_on_record_and_scenario_for_hash(self, store):
        other = scenario("one-fail-adaptive k=32 reps=4 seed=9")
        store.append(scenario(), seeded_runs(scenario()))
        store.append(other, seeded_runs(other))
        assert sorted(s.content_hash() for s in store.scenarios_on_record()) == sorted(
            [scenario().content_hash(), other.content_hash()]
        )
        assert store.scenario_for_hash(scenario().content_hash()) == scenario()
        assert store.scenario_for_hash("0000000000000000") is None

    def test_scenario_for_hash_rejects_non_digest_input(self, store):
        store.append(scenario(), seeded_runs(scenario()))
        for payload in ("../outside", "..", "ABCDEF0123456789", "0" * 15, "0" * 17, ""):
            assert store.scenario_for_hash(payload) is None

    def test_summaries(self, store):
        store.append(scenario(), seeded_runs(scenario()))
        records = store.summaries()
        assert len(records) == 1
        assert records[0].hash == scenario().content_hash()
        assert records[0].replications_on_record == 4
        assert records[0].solved_fraction == 1.0

    def test_corrupt_record_reads_as_missing_not_fatal(self, backend_spec, store):
        store.append(scenario(), seeded_runs(scenario()))
        store.close()
        corrupt_one_replication(backend_spec, scenario(), replication=2)
        reopened = open_store(backend_spec)
        assert sorted(reopened.load(scenario())) == [0, 1, 3]
        reopened.close()

    def test_external_append_is_visible_to_an_open_instance(self, backend_spec, store):
        """A second writer's committed append must not be masked by caches."""
        store.append(scenario(), seeded_runs(scenario(), range(0, 2)))
        assert store.cached_count(scenario()) == 2
        other = open_store(backend_spec)
        other.append(scenario(), seeded_runs(scenario(), range(2, 4)))
        other.close()
        assert store.cached_count(scenario()) == 4
        assert sorted(store.load(scenario())) == [0, 1, 2, 3]

    def test_threaded_appends_do_not_tear(self, store):
        big = scenario().replace(replications=200)
        seeds = big.seeds()

        def worker(base: int) -> None:
            for replication in range(base * 25, base * 25 + 25):
                store.append(big, [make_run(replication, seeds[replication])])

        threads = [threading.Thread(target=worker, args=(base,)) for base in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(store.load(big)) == list(range(200))
        assert store.scenarios_on_record() == [big]

    def test_multiprocess_appends_do_not_tear(self, backend_spec, store):
        store.close()
        with ProcessPoolExecutor(max_workers=4) as pool:
            futures = [
                pool.submit(_append_via_spec, backend_spec, base * 20, 20)
                for base in range(4)
            ]
            for future in futures:
                future.result()
        reopened = open_store(backend_spec)
        loaded = reopened.load(scenario().replace(replications=80))
        assert sorted(loaded) == list(range(80))
        assert reopened.scenarios_on_record() == [scenario()]
        reopened.close()

    def test_session_resume_via_spec(self, backend_spec):
        first = Session(store_dir=backend_spec).run(scenario())
        assert first.new_runs == 4
        resumed = Session(store_dir=backend_spec).run(scenario())
        assert resumed.new_runs == 0 and resumed.cached_runs == 4
        assert resumed.makespans == first.makespans

    def test_session_run_cached_and_counts(self, backend_spec):
        session = Session(store_dir=backend_spec)
        assert session.run_cached(scenario()) is None
        fresh = session.run(scenario())
        assert session.cached_count(scenario()) == 4
        served = session.run_cached(scenario())
        assert served is not None and served.new_runs == 0
        assert served.makespans == fresh.makespans
        assert session.run_cached(scenario().replace(replications=6)) is None

    def test_compact_preserves_served_data(self, backend_spec, store):
        store.append(scenario(), seeded_runs(scenario()))
        before = store.load(scenario())
        report = store.compact()
        assert report.scenarios == 1
        after = store.load(scenario())
        assert sorted(after) == sorted(before)
        assert [after[i].result.makespan for i in sorted(after)] == [
            before[i].result.makespan for i in sorted(before)
        ]

    def test_session_ingest_is_idempotent_and_seed_validating(self, backend_spec):
        session = Session(store_dir=backend_spec)
        seeds = scenario().seeds()
        runs = seeded_runs(scenario())
        assert session.ingest(scenario(), runs) == 4
        assert session.ingest(scenario(), runs) == 0
        bogus = [make_run(0, seeds[0] + 1)]
        assert session.ingest(scenario().replace(seed=99), bogus) == 0


class TestFederationOnDisk:
    @pytest.mark.parametrize("src_name", BACKENDS)
    @pytest.mark.parametrize("dst_name", BACKENDS)
    def test_sync_makes_destination_serve_with_zero_simulations(
        self, tmp_path, src_name, dst_name
    ):
        src_spec = BACKEND_SPECS[src_name](tmp_path / "src")
        dst_spec = BACKEND_SPECS[dst_name](tmp_path / "dst")
        source_session = Session(store_dir=src_spec)
        source_session.run(scenario())
        report = sync_stores(src_spec, dst_spec)
        assert report.scenarios_examined == 1
        assert report.scenarios_copied == 1
        assert report.replications_copied == 4
        served = Session(store_dir=dst_spec).run(scenario())
        assert served.new_runs == 0 and served.cached_runs == 4
        again = sync_stores(src_spec, dst_spec)
        assert again.scenarios_copied == 0 and again.replications_copied == 0

    def test_sync_copies_only_missing_replications(self, tmp_path):
        src = open_store(BACKEND_SPECS["jsonl"](tmp_path / "src"))
        dst = open_store(BACKEND_SPECS["sqlite"](tmp_path / "dst"))
        src.append(scenario(), seeded_runs(scenario()))
        dst.append(scenario(), seeded_runs(scenario(), range(0, 2)))
        report = sync_stores(src, dst)
        assert report.replications_copied == 2
        assert sorted(dst.load(scenario())) == [0, 1, 2, 3]

    def test_sync_skips_foreign_seed_records(self, tmp_path):
        src = open_store(BACKEND_SPECS["jsonl"](tmp_path / "src"))
        dst = open_store(BACKEND_SPECS["jsonl"](tmp_path / "dst"))
        seeds = scenario().seeds()
        src.append(scenario(), [make_run(0, seeds[0]), make_run(1, seeds[1] + 1)])
        report = sync_stores(src, dst)
        assert report.replications_copied == 1
        assert sorted(dst.load(scenario())) == [0]


class TestFederationOverHttp:
    @pytest.fixture
    def server(self, tmp_path):
        from repro.service import create_server

        server = create_server(port=0, store_dir=tmp_path / "server_store", quiet=True)
        server.start_background()
        yield server
        server.close()

    def test_push_to_server_makes_submission_cached(self, tmp_path, server):
        from repro.service import ServiceClient

        local_spec = BACKEND_SPECS["sqlite"](tmp_path / "local")
        Session(store_dir=local_spec).run(scenario())
        report = sync_stores(local_spec, server.url)
        assert report.replications_copied == 4
        status = ServiceClient(server.url).submit(scenario())
        assert status.cached is True
        assert status.state == "done"

    def test_pull_from_server_serves_locally_with_zero_simulations(self, tmp_path, server):
        from repro.service import ServiceClient

        ServiceClient(server.url).run(scenario())
        mirror_spec = BACKEND_SPECS["jsonl"](tmp_path / "mirror")
        report = sync_stores(server.url, mirror_spec)
        assert report.replications_copied == 4
        served = Session(store_dir=mirror_spec).run(scenario())
        assert served.new_runs == 0 and served.cached_runs == 4

    def test_push_is_idempotent_over_http(self, tmp_path, server):
        local_spec = BACKEND_SPECS["jsonl"](tmp_path / "local")
        Session(store_dir=local_spec).run(scenario())
        first = sync_stores(local_spec, server.url)
        second = sync_stores(local_spec, server.url)
        assert first.replications_copied == 4
        assert second.replications_copied == 0


class TestJsonlSpecifics:
    def test_compact_removes_lock_sidecars(self, tmp_path):
        store = JsonlStore(tmp_path)
        store.append(scenario(), seeded_runs(scenario()))
        assert list(tmp_path.glob("*.jsonl.lock"))
        report = store.compact()
        assert report.lock_files_removed >= 1
        assert not list(tmp_path.glob("*.jsonl.lock"))
        assert sorted(store.load(scenario())) == [0, 1, 2, 3]

    def test_compact_drops_superseded_and_torn_records(self, tmp_path):
        store = JsonlStore(tmp_path)
        seeds = scenario().seeds()
        store.append(scenario(), [make_run(0, seeds[0], engine="fair")])
        store.append(scenario(), [make_run(0, seeds[0], engine="slot")])
        path = store.path_for(scenario())
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"kind": "run", "replication": 9, "se')  # torn tail
        report = store.compact()
        assert report.records_dropped == 2  # the superseded duplicate + the torn line
        assert store.load(scenario())[0].result.engine == "slot"
        headers = [
            json.loads(line)
            for line in path.read_text(encoding="utf-8").splitlines()
            if json.loads(line)["kind"] == "scenario"
        ]
        assert len(headers) == 1

    def test_bare_path_spec_defaults_to_jsonl(self, tmp_path):
        store = open_store(str(tmp_path / "plain"))
        assert isinstance(store, JsonlStore)
        assert open_store(tmp_path / "plain2").name == "jsonl"


class TestSqliteSpecifics:
    def test_option_parsing_round_trip(self, tmp_path):
        store = open_store(f"sqlite:{tmp_path / 'a.db'}?ttl=60&max_rows=100")
        assert isinstance(store, SqliteStore)
        assert store.ttl == 60.0
        assert store.max_rows == 100
        assert "ttl=60" in store.describe() and "max_rows=100" in store.describe()
        store.close()

    def test_unknown_option_is_an_error(self, tmp_path):
        with pytest.raises(ValueError, match="unknown sqlite store option"):
            open_store(f"sqlite:{tmp_path / 'a.db'}?bogus=1")

    def test_ttl_eviction_on_compact(self, tmp_path):
        store = SqliteStore(tmp_path / "a.db", ttl=3600)
        old = scenario("one-fail-adaptive k=32 reps=4 seed=5")
        store.append(old, seeded_runs(old))
        store.append(scenario(), seeded_runs(scenario()))
        # Age the first cell's rows past the TTL by rewriting created_at.
        with sqlite3.connect(tmp_path / "a.db") as connection:
            connection.execute(
                "UPDATE runs SET created_at = created_at - 7200 WHERE hash = ?",
                (old.content_hash(),),
            )
        report = store.compact()
        assert report.runs_evicted == 4
        assert store.load(old) == {}
        assert store.scenario_for_hash(old.content_hash()) is None
        assert sorted(store.load(scenario())) == [0, 1, 2, 3]
        store.close()

    def test_max_rows_evicts_oldest_cells_never_the_appended_one(self, tmp_path):
        store = SqliteStore(tmp_path / "a.db", max_rows=6)
        first = scenario("one-fail-adaptive k=32 reps=4 seed=5")
        store.append(first, seeded_runs(first))
        store.append(scenario(), seeded_runs(scenario()))
        # 8 rows > 6: the older cell is evicted whole, the fresh one is kept.
        assert store.load(first) == {}
        assert sorted(store.load(scenario())) == [0, 1, 2, 3]
        store.close()

    def test_cached_count_is_a_counter_probe(self, tmp_path):
        store = SqliteStore(tmp_path / "a.db")
        big = scenario().replace(replications=50)
        store.append(big, seeded_runs(big))
        assert store.cached_count(big) == 50
        assert store.cached_count(big.replace(replications=10)) == 10
        assert store.cached_count(big.replace(replications=80)) == 50
        store.close()
