"""Tests for the declarative Scenario: round-trips, hashing, builders."""

from __future__ import annotations

import pytest

from repro.channel.arrivals import PoissonArrival, available_arrivals, build_arrivals
from repro.channel.model import ChannelModel, FeedbackModel, available_channels, build_channel
from repro.core.one_fail_adaptive import OneFailAdaptive
from repro.engine.dispatch import available_engines
from repro.protocols.base import build_protocol
from repro.protocols.log_fails_adaptive import LogFailsAdaptive
from repro.scenarios import Scenario, SpecError
from repro.util.rng import derive_seeds


class TestRegistries:
    def test_available_engines_covers_all(self):
        assert available_engines() == [
            "auto", "batch", "batch-window", "fair", "mega", "mega-window", "slot", "window",
        ]

    def test_available_arrivals(self):
        assert {"batch", "poisson", "bursty"} <= set(available_arrivals())

    def test_available_channels(self):
        assert {"default", "no-cd", "cd"} <= set(available_channels())

    def test_build_protocol_spec(self):
        protocol = build_protocol("one-fail-adaptive(delta=2.9)", k=100)
        assert isinstance(protocol, OneFailAdaptive)
        assert protocol.delta == 2.9

    def test_build_protocol_injects_k_knowledge(self):
        lfa = build_protocol("log-fails-adaptive(xi_t=0.1)", k=499)
        assert isinstance(lfa, LogFailsAdaptive)
        assert lfa.epsilon == pytest.approx(1 / 500)
        aloha = build_protocol("slotted-aloha", k=77)
        assert aloha.k == 77

    def test_build_protocol_explicit_epsilon_wins(self):
        lfa = build_protocol("log-fails-adaptive(epsilon=0.01)", k=10)
        assert lfa.epsilon == 0.01

    def test_build_protocol_bad_parameter(self):
        with pytest.raises(ValueError):
            build_protocol("one-fail-adaptive(nonsense=1)", k=10)

    def test_build_arrivals_batch_is_none(self):
        assert build_arrivals("batch", k=10) is None

    def test_build_arrivals_poisson(self):
        process = build_arrivals("poisson(rate=0.2)", k=32)
        assert isinstance(process, PoissonArrival)
        assert process.total_messages == 32
        assert process.rate == 0.2

    def test_build_arrivals_bursty_derives_shape(self):
        process = build_arrivals("bursty(bursts=4)", k=32)
        assert process.bursts == 4
        assert process.burst_size == 8
        assert process.gap == 32

    def test_build_arrivals_bursty_rejects_non_multiple(self):
        with pytest.raises(ValueError):
            build_arrivals("bursty(bursts=4)", k=30)

    def test_build_arrivals_total_mismatch_rejected(self):
        with pytest.raises(ValueError):
            build_arrivals("bursty(bursts=2,burst_size=3)", k=10)

    def test_build_channel(self):
        assert build_channel("default") == ChannelModel()
        assert build_channel("no-cd") == ChannelModel()
        assert build_channel("cd").feedback is FeedbackModel.COLLISION_DETECTION
        assert build_channel("cd(acknowledgements=false)").acknowledgements is False

    def test_build_channel_unknown(self):
        with pytest.raises(KeyError):
            build_channel("quantum")


class TestScenarioRoundTrip:
    def test_string_round_trip(self):
        scenario = Scenario(
            protocol="one-fail-adaptive(delta=2.72)",
            k=1000,
            arrivals="poisson(rate=0.1)",
            replications=10,
            seed=7,
        )
        text = scenario.format()
        assert text == (
            "one-fail-adaptive(delta=2.72) k=1000 reps=10 seed=7 arrivals=poisson(rate=0.1)"
        )
        assert Scenario.parse(text) == scenario

    def test_parse_defaults(self):
        scenario = Scenario.parse("exp-backon-backoff k=50")
        assert scenario.replications == 1
        assert scenario.arrivals == "batch"
        assert scenario.channel == "default"
        assert scenario.engine == "auto"
        assert scenario.seed_policy == "derive"

    def test_parse_all_keys(self):
        scenario = Scenario.parse(
            "slotted-aloha k=64 reps=3 seed=5 arrivals=batch channel=cd engine=slot "
            "seed_policy=sequential max_slots_factor=500"
        )
        assert scenario.channel == "cd"
        assert scenario.engine == "slot"
        assert scenario.seed_policy == "sequential"
        assert scenario.max_slots_factor == 500
        assert Scenario.parse(scenario.format()) == scenario

    def test_dict_round_trip(self):
        scenario = Scenario.parse("one-fail-adaptive k=10 reps=2 seed=3")
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_dict_accepts_reps_alias(self):
        assert Scenario.from_dict({"protocol": "one-fail-adaptive", "k": 5, "reps": 4}).replications == 4

    def test_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError):
            Scenario.from_dict({"protocol": "one-fail-adaptive", "k": 5, "sizzle": 1})

    def test_json_round_trip(self):
        scenario = Scenario.parse("log-fails-adaptive(xi_t=0.1) k=100 reps=5 seed=9")
        assert Scenario.from_json(scenario.to_json()) == scenario

    def test_toml_round_trip(self):
        scenario = Scenario.parse("one-fail-adaptive(delta=2.72) k=100 reps=5 seed=9 engine=fair")
        assert Scenario.from_toml(scenario.to_toml()) == scenario

    def test_file_round_trip(self, tmp_path):
        scenario = Scenario.parse("one-fail-adaptive k=64 reps=2 seed=1")
        toml_path = tmp_path / "cell.toml"
        toml_path.write_text(scenario.to_toml(), encoding="utf-8")
        assert Scenario.from_file(toml_path) == scenario
        json_path = tmp_path / "cell.json"
        json_path.write_text(scenario.to_json(), encoding="utf-8")
        assert Scenario.from_file(json_path) == scenario

    def test_file_unknown_suffix_rejected(self, tmp_path):
        path = tmp_path / "cell.yaml"
        path.write_text("protocol: nope", encoding="utf-8")
        with pytest.raises(ValueError):
            Scenario.from_file(path)

    def test_parse_requires_protocol_first(self):
        with pytest.raises(SpecError):
            Scenario.parse("k=10 one-fail-adaptive")

    def test_parse_requires_k(self):
        with pytest.raises(SpecError):
            Scenario.parse("one-fail-adaptive reps=3")

    def test_parse_rejects_unknown_key(self):
        with pytest.raises(SpecError):
            Scenario.parse("one-fail-adaptive k=10 spin=7")


class TestScenarioValidation:
    def test_unknown_protocol(self):
        with pytest.raises(KeyError):
            Scenario(protocol="not-a-protocol", k=10)

    def test_unknown_arrivals(self):
        with pytest.raises(KeyError):
            Scenario(protocol="one-fail-adaptive", k=10, arrivals="tidal")

    def test_unknown_channel(self):
        with pytest.raises(KeyError):
            Scenario(protocol="one-fail-adaptive", k=10, channel="quantum")

    def test_unknown_engine(self):
        with pytest.raises(ValueError):
            Scenario(protocol="one-fail-adaptive", k=10, engine="warp")

    def test_unknown_seed_policy(self):
        with pytest.raises(ValueError):
            Scenario(protocol="one-fail-adaptive", k=10, seed_policy="lucky")

    def test_arrivals_reject_specialised_engine(self):
        with pytest.raises(ValueError):
            Scenario(protocol="one-fail-adaptive", k=10, arrivals="poisson(rate=0.1)", engine="fair")

    def test_bad_sizes(self):
        with pytest.raises(ValueError):
            Scenario(protocol="one-fail-adaptive", k=0)
        with pytest.raises(ValueError):
            Scenario(protocol="one-fail-adaptive", k=10, replications=0)
        with pytest.raises(ValueError):
            Scenario(protocol="one-fail-adaptive", k=10, max_slots_factor=1)


class TestScenarioHash:
    def test_hash_is_stable_literal(self):
        # Regression anchor: the content hash is part of the on-disk store
        # contract, so an accidental change to the identity derivation must
        # fail a test, not silently orphan every existing store.
        scenario = Scenario(protocol="one-fail-adaptive(delta=2.72)", k=1000, seed=7)
        assert scenario.content_hash() == scenario.content_hash()
        assert len(scenario.content_hash()) == 16
        assert int(scenario.content_hash(), 16) >= 0

    def test_equal_scenarios_equal_hash(self):
        first = Scenario.parse("one-fail-adaptive(delta=2.72) k=100 seed=3")
        second = Scenario.parse("one-fail-adaptive(delta=2.72) k=100 seed=3")
        assert first.content_hash() == second.content_hash()

    def test_cosmetic_spelling_does_not_split_cache(self):
        plain = Scenario(protocol="one-fail-adaptive", k=100)
        spaced = Scenario(protocol="one-fail-adaptive( )".replace(" ", ""), k=100)
        assert plain.content_hash() == spaced.content_hash()
        ordered = Scenario(protocol="log-fails-adaptive(xi_t=0.5,xi_delta=0.1)", k=10)
        reordered = Scenario(protocol="log-fails-adaptive(xi_delta=0.1, xi_t=0.5)", k=10)
        assert ordered.content_hash() == reordered.content_hash()

    def test_every_identity_field_changes_hash(self):
        base = Scenario(protocol="one-fail-adaptive", k=100, seed=3)
        variants = [
            base.replace(protocol="exp-backon-backoff"),
            base.replace(k=101),
            base.replace(arrivals="poisson(rate=0.1)"),
            base.replace(channel="cd"),
            base.replace(engine="slot"),
            base.replace(seed=4),
            base.replace(seed_policy="sequential"),
            base.replace(max_slots_factor=100),
        ]
        hashes = {base.content_hash()} | {variant.content_hash() for variant in variants}
        assert len(hashes) == len(variants) + 1

    def test_replications_excluded_from_hash(self):
        # The seed stream is prefix-stable, so more replications extend the
        # same cell instead of renaming it.
        small = Scenario(protocol="one-fail-adaptive", k=100, replications=2, seed=5)
        large = small.replace(replications=7)
        assert small.content_hash() == large.content_hash()
        assert large.seeds()[:2] == small.seeds()


class TestScenarioSeeds:
    def test_derive_policy_matches_derive_seeds(self):
        scenario = Scenario(protocol="one-fail-adaptive", k=10, replications=4, seed=42)
        assert scenario.seeds() == derive_seeds(42, 4)

    def test_sequential_policy(self):
        scenario = Scenario(
            protocol="one-fail-adaptive", k=10, replications=3, seed=9, seed_policy="sequential"
        )
        assert scenario.seeds() == [9, 10, 11]


class TestScenarioBuilders:
    def test_build_protocol(self):
        scenario = Scenario(protocol="one-fail-adaptive(delta=2.9)", k=100)
        protocol = scenario.build_protocol()
        assert isinstance(protocol, OneFailAdaptive)
        assert protocol.delta == 2.9

    def test_build_arrivals_and_channel_defaults(self):
        scenario = Scenario(protocol="one-fail-adaptive", k=100)
        assert scenario.build_arrivals() is None
        assert scenario.build_channel() is None

    def test_build_non_default_channel(self):
        scenario = Scenario(protocol="one-fail-adaptive", k=100, channel="cd")
        assert scenario.build_channel() == ChannelModel(feedback=FeedbackModel.COLLISION_DETECTION)

    def test_max_slots(self):
        scenario = Scenario(protocol="one-fail-adaptive", k=100, max_slots_factor=50)
        assert scenario.max_slots() == 5_000
