"""Tests for the balls-in-bins window engine."""

from __future__ import annotations

import pytest

from repro.channel.model import ChannelModel, FeedbackModel
from repro.channel.trace import ExecutionTrace
from repro.core.exp_backon_backoff import ExpBackonBackoff
from repro.core.one_fail_adaptive import OneFailAdaptive
from repro.engine.window_engine import WindowEngine
from repro.protocols.backoff import ExponentialBackoff, LogLogIteratedBackoff
from repro.protocols.base import WindowedProtocol


class TestBasicOperation:
    @pytest.mark.parametrize("k", [1, 2, 10, 1_000])
    def test_solves_and_counts(self, k, window_engine):
        result = window_engine.simulate(ExpBackonBackoff(), k, seed=1)
        assert result.solved
        assert result.successes == k
        assert result.makespan >= k

    def test_slots_cover_makespan(self, window_engine):
        result = window_engine.simulate(ExpBackonBackoff(), 50, seed=2)
        assert result.slots_simulated >= result.makespan

    def test_window_count_in_metadata(self, window_engine):
        result = window_engine.simulate(ExpBackonBackoff(), 50, seed=2)
        assert result.metadata["windows"] >= 1

    def test_deterministic_given_seed(self, window_engine):
        a = window_engine.simulate(ExpBackonBackoff(), 200, seed=5)
        b = window_engine.simulate(ExpBackonBackoff(), 200, seed=5)
        assert a.makespan == b.makespan

    def test_different_seeds_differ(self, window_engine):
        makespans = {
            window_engine.simulate(ExpBackonBackoff(), 200, seed=seed).makespan
            for seed in range(5)
        }
        assert len(makespans) > 1

    def test_works_for_all_windowed_protocols(self, window_engine):
        for protocol in (ExpBackonBackoff(), LogLogIteratedBackoff(), ExponentialBackoff()):
            result = window_engine.simulate(protocol, 100, seed=1)
            assert result.solved, protocol.name

    def test_rejects_fair_protocol(self, window_engine):
        with pytest.raises(TypeError):
            window_engine.simulate(OneFailAdaptive(), 10, seed=0)

    def test_invalid_k_rejected(self, window_engine):
        with pytest.raises(ValueError):
            window_engine.simulate(ExpBackonBackoff(), -1, seed=0)

    def test_requires_papers_channel(self):
        with pytest.raises(ValueError):
            WindowEngine(channel=ChannelModel(feedback=FeedbackModel.COLLISION_DETECTION))
        with pytest.raises(ValueError):
            WindowEngine(channel=ChannelModel(acknowledgements=False))


class TestSlotCapAndSchedules:
    def test_unsolved_when_capped(self, window_engine):
        result = window_engine.simulate(ExpBackonBackoff(), 1_000, seed=0, max_slots=50)
        assert not result.solved

    def test_exhausted_schedule_raises(self, window_engine):
        class TinySchedule(WindowedProtocol):
            name = "test-tiny-schedule"

            def window_lengths(self):
                yield 1

        with pytest.raises(RuntimeError):
            window_engine.simulate(TinySchedule(), 10, seed=0)

    def test_invalid_window_length_raises(self, window_engine):
        class ZeroWindow(WindowedProtocol):
            name = "test-zero-window"

            def window_lengths(self):
                while True:
                    yield 0

        with pytest.raises(ValueError):
            window_engine.simulate(ZeroWindow(), 10, seed=0)


class TestBallsInBinsSemantics:
    def test_trace_singletons_match_successes(self, window_engine):
        trace = ExecutionTrace()
        result = window_engine.simulate(ExpBackonBackoff(), 30, seed=3, trace=trace)
        assert trace.successes == result.successes == 30

    def test_makespan_is_last_success_slot_plus_one(self, window_engine):
        trace = ExecutionTrace()
        result = window_engine.simulate(ExpBackonBackoff(), 30, seed=4, trace=trace)
        assert result.makespan == trace.success_slots()[-1] + 1

    def test_single_node_delivers_in_first_window(self, window_engine):
        result = window_engine.simulate(ExpBackonBackoff(), 1, seed=6)
        assert result.makespan <= 2  # first window of Algorithm 2 has two slots

    def test_deterministic_single_slot_windows(self, window_engine):
        """With k=1 and 1-slot windows the message goes out at slot 0."""

        class UnitWindows(WindowedProtocol):
            name = "test-unit-windows"

            def window_lengths(self):
                while True:
                    yield 1

        result = window_engine.simulate(UnitWindows(), 1, seed=0)
        assert result.makespan == 1

    def test_two_nodes_unit_windows_never_solve(self, window_engine):
        """Two stations in 1-slot windows always collide: the cap must trigger."""

        class UnitWindows(WindowedProtocol):
            name = "test-unit-windows-2"

            def window_lengths(self):
                while True:
                    yield 1

        result = window_engine.simulate(UnitWindows(), 2, seed=0, max_slots=100)
        assert not result.solved
        assert result.collisions == 100


class TestStatisticalBehaviour:
    def test_ebb_ratio_matches_paper_at_moderate_k(self, window_engine):
        """Table 1 reports steps/k between ~5 and ~8 for Exp Back-on/Back-off."""
        k = 1_000
        ratios = [
            window_engine.simulate(ExpBackonBackoff(), k, seed=seed).steps_per_node
            for seed in range(5)
        ]
        mean = sum(ratios) / len(ratios)
        assert 4.0 < mean < 8.5

    def test_ebb_within_theorem2_bound(self, window_engine):
        from repro.core.analysis import ebb_makespan_bound

        k = 2_000
        for seed in range(3):
            result = window_engine.simulate(ExpBackonBackoff(), k, seed=seed)
            assert result.makespan <= ebb_makespan_bound(k)
