"""Tests for the capability-driven engine registry.

The registry is the single source of truth for dispatch: engines declare
capabilities, protocols declare kinds, and `pick_engine_name` /
`batch_engine_for` answer every "which engine serves this?" question.  The
final class here pins the property the registry exists for — the scenario
layer (`Session`), the sweep runner (`run_sweep`) and the dispatch front
door agree on engine selection and batch eligibility for **every** protocol
in the registry, because they all ask the same predicate.
"""

from __future__ import annotations

import pytest

from repro.channel.arrivals import PoissonArrival
from repro.channel.model import ChannelModel, FeedbackModel
from repro.core.exp_backon_backoff import ExpBackonBackoff
from repro.core.one_fail_adaptive import OneFailAdaptive
from repro.engine.registry import (
    EngineCapabilities,
    EngineRegistry,
    available_engines,
    batch_engine_for,
    fused_engine_for,
    engine_capabilities,
    engine_class,
    engine_names,
    pick_engine_name,
)
from repro.experiments.config import ExperimentConfig, ProtocolSpec
from repro.experiments.runner import run_sweep
from repro.protocols.base import available_protocols, build_protocol
from repro.protocols.splitting import BinarySplitting
from repro.scenarios.scenario import Scenario
from repro.scenarios.session import Session

CD_CHANNEL = ChannelModel(feedback=FeedbackModel.COLLISION_DETECTION)


class TestRegistryContents:
    def test_available_engines_roster(self):
        assert available_engines() == [
            "auto", "batch", "batch-window", "fair", "mega", "mega-window",
            "slot", "window",
        ]

    def test_every_engine_declares_capabilities(self):
        for name in engine_names():
            caps = engine_capabilities(name)
            assert isinstance(caps, EngineCapabilities)
            assert engine_class(name).name == name

    def test_declared_capability_matrix(self):
        assert engine_capabilities("slot").protocol_kinds is None
        assert engine_capabilities("slot").arrivals
        assert engine_capabilities("fair").protocol_kinds == frozenset({"fair"})
        assert engine_capabilities("window").protocol_kinds == frozenset({"windowed"})
        assert engine_capabilities("batch").batched
        assert engine_capabilities("batch-window").batched
        assert not engine_capabilities("batch").traces
        assert not engine_capabilities("batch-window").traces
        for name in ("fair", "window", "batch", "batch-window"):
            assert not engine_capabilities(name).arrivals

    def test_unknown_engine_error_enumerates_registry(self):
        with pytest.raises(ValueError) as excinfo:
            engine_class("quantum")
        for name in engine_names():
            assert name in str(excinfo.value)

    def test_registration_validates_declarations(self):
        registry = EngineRegistry()

        class NoCaps:
            name = "no-caps"

        with pytest.raises(ValueError, match="capabilities"):
            registry.register(NoCaps)

        class BatchedWithoutSupports:
            name = "batched-no-supports"
            capabilities = EngineCapabilities(batched=True)

        with pytest.raises(ValueError, match="supports"):
            registry.register(BatchedWithoutSupports)


class TestAutoPick:
    def test_kind_routing(self):
        assert pick_engine_name(OneFailAdaptive()) == "fair"
        assert pick_engine_name(ExpBackonBackoff()) == "window"
        assert pick_engine_name(BinarySplitting()) == "slot"

    def test_non_default_channel_falls_back_to_slot(self):
        assert pick_engine_name(OneFailAdaptive(), channel=CD_CHANNEL) == "slot"

    def test_explicit_default_channel_keeps_reduced_engine(self):
        assert pick_engine_name(OneFailAdaptive(), channel=ChannelModel()) == "fair"

    def test_arrivals_fall_back_to_slot(self):
        arrivals = PoissonArrival(k=10, rate=0.5)
        assert pick_engine_name(OneFailAdaptive(), arrivals=arrivals) == "slot"
        assert pick_engine_name(ExpBackonBackoff(), arrivals=arrivals) == "slot"

    def test_auto_never_picks_batched_engines(self):
        for protocol in (OneFailAdaptive(), ExpBackonBackoff()):
            assert not engine_capabilities(pick_engine_name(protocol)).batched


class TestExplicitPickValidation:
    def test_wrong_kind_rejected_with_capable_engines(self):
        with pytest.raises(ValueError) as excinfo:
            pick_engine_name(ExpBackonBackoff(), engine="fair")
        message = str(excinfo.value)
        assert "windowed" in message and "window" in message and "slot" in message

    def test_incapable_channel_rejected_with_capable_engines(self):
        # Before the registry this either raised deep inside the engine
        # constructor or silently simulated the wrong feedback model; now the
        # explicit choice is validated up front against declared channels.
        for engine in ("fair", "window", "batch", "batch-window"):
            with pytest.raises(ValueError, match="cannot serve channel"):
                pick_engine_name(OneFailAdaptive(), engine=engine, channel=CD_CHANNEL)

    def test_arrivals_rejected_for_non_arrival_engines(self):
        arrivals = PoissonArrival(k=10, rate=0.5)
        for engine in ("fair", "window", "batch", "batch-window"):
            with pytest.raises(ValueError, match="arrival"):
                pick_engine_name(OneFailAdaptive(), engine=engine, arrivals=arrivals)

    def test_slot_serves_everything_explicitly(self):
        assert pick_engine_name(ExpBackonBackoff(), engine="slot", channel=CD_CHANNEL) == "slot"

    def test_ackless_channel_diagnosed_as_such(self):
        # The precise failure is the missing acknowledgements, not any
        # engine's feedback capabilities.
        no_acks = ChannelModel(acknowledgements=False)
        for engine in ("auto", "slot", "fair"):
            with pytest.raises(ValueError, match="without acknowledgements"):
                pick_engine_name(OneFailAdaptive(), engine=engine, channel=no_acks)


class TestBatchEngineFor:
    def test_kind_routing(self):
        assert batch_engine_for(OneFailAdaptive()) == "batch"
        assert batch_engine_for(ExpBackonBackoff()) == "batch-window"
        assert batch_engine_for(BinarySplitting()) is None

    def test_explicit_selectors(self):
        assert batch_engine_for(OneFailAdaptive(), engine="batch") == "batch"
        assert batch_engine_for(ExpBackonBackoff(), engine="batch-window") == "batch-window"
        # A per-run selector is never batch-eligible.
        assert batch_engine_for(OneFailAdaptive(), engine="fair") is None
        assert batch_engine_for(ExpBackonBackoff(), engine="window") is None
        # A kind-mismatched batch selector is not eligible either.
        assert batch_engine_for(ExpBackonBackoff(), engine="batch") is None
        assert batch_engine_for(OneFailAdaptive(), engine="batch-window") is None

    def test_arrivals_and_non_default_channels_never_batch(self):
        arrivals = PoissonArrival(k=10, rate=0.5)
        assert batch_engine_for(OneFailAdaptive(), arrivals=arrivals) is None
        assert batch_engine_for(OneFailAdaptive(), channel=CD_CHANNEL) is None
        assert batch_engine_for(ExpBackonBackoff(), channel=CD_CHANNEL) is None


class TestLayersAgreeForEveryRegisteredProtocol:
    """Session, run_sweep and the registry agree on every protocol's engines.

    This is the regression the registry prevents: before it, three divergent
    copies of the eligibility logic could (and did) disagree.  For every
    protocol in the registry we build an instance, ask the registry what
    should happen, and assert that a Session run and a run_sweep cell both
    produce results from exactly the predicted engine — batched and per-run.
    """

    K = 12
    REPS = 2

    #: Protocols that cannot run on the paper's default channel, with the
    #: channel spec they need (binary splitting needs ternary feedback).
    CHANNEL_OVERRIDES = {"binary-splitting": "cd"}

    @pytest.mark.parametrize("name", available_protocols())
    def test_batched_and_per_run_routing(self, name):
        channel_spec = self.CHANNEL_OVERRIDES.get(name, "default")
        scenario = Scenario(protocol=name, k=self.K, replications=self.REPS, seed=3,
                            channel=channel_spec, max_slots_factor=100)
        protocol = scenario.build_protocol()
        channel = scenario.build_channel()
        predicted_fused = fused_engine_for(protocol, channel=channel)
        predicted_batch = batch_engine_for(protocol, channel=channel)
        predicted_per_run = pick_engine_name(protocol, channel=channel)

        batched_session = Session().run(scenario)
        expected_batched = predicted_fused or predicted_batch or predicted_per_run
        assert batched_session.engine_used == expected_batched

        per_run_session = Session(batch=False).run(scenario)
        assert per_run_session.engine_used == predicted_per_run

        if channel_spec != "default":
            return  # run_sweep cells always use the paper's channel
        spec = ProtocolSpec(key=name, label=name, spec=name)
        config = ExperimentConfig(k_values=[self.K], runs=self.REPS, seed=3,
                                  max_slots_factor=100)
        batched_sweep = run_sweep([spec], config).cell(name, self.K)
        assert {result.engine for result in batched_sweep.results} == {expected_batched}
        per_run_sweep = run_sweep([spec], config, batch=False).cell(name, self.K)
        assert {result.engine for result in per_run_sweep.results} == {predicted_per_run}
