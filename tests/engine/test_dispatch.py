"""Tests for engine dispatch (`simulate` / `pick_engine`)."""

from __future__ import annotations

import pytest

from repro.channel.arrivals import BurstyArrival, PoissonArrival
from repro.channel.model import ChannelModel, FeedbackModel
from repro.core.exp_backon_backoff import ExpBackonBackoff
from repro.core.one_fail_adaptive import OneFailAdaptive
from repro.engine.dispatch import pick_engine, simulate
from repro.engine.fair_engine import FairEngine
from repro.engine.slot_engine import SlotEngine
from repro.engine.window_engine import WindowEngine
from repro.protocols.splitting import BinarySplitting


class TestPickEngine:
    def test_fair_protocol_gets_fair_engine(self):
        assert isinstance(pick_engine(OneFailAdaptive()), FairEngine)

    def test_windowed_protocol_gets_window_engine(self):
        assert isinstance(pick_engine(ExpBackonBackoff()), WindowEngine)

    def test_other_protocols_get_slot_engine(self):
        assert isinstance(pick_engine(BinarySplitting()), SlotEngine)

    def test_non_default_channel_forces_slot_engine(self):
        channel = ChannelModel(feedback=FeedbackModel.COLLISION_DETECTION)
        assert isinstance(pick_engine(OneFailAdaptive(), channel=channel), SlotEngine)

    def test_explicit_engine_respected(self):
        assert isinstance(pick_engine(OneFailAdaptive(), engine="slot"), SlotEngine)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            pick_engine(OneFailAdaptive(), engine="quantum")

    def test_arrivals_force_slot_engine(self):
        arrivals = PoissonArrival(k=10, rate=0.5)
        assert isinstance(pick_engine(OneFailAdaptive(), arrivals=arrivals), SlotEngine)
        assert isinstance(pick_engine(ExpBackonBackoff(), arrivals=arrivals), SlotEngine)

    def test_arrivals_reject_specialised_engines(self):
        arrivals = PoissonArrival(k=10, rate=0.5)
        with pytest.raises(ValueError):
            pick_engine(OneFailAdaptive(), engine="fair", arrivals=arrivals)
        with pytest.raises(ValueError):
            pick_engine(ExpBackonBackoff(), engine="window", arrivals=arrivals)


class TestSimulateFrontDoor:
    def test_returns_solved_result(self):
        result = simulate(OneFailAdaptive(), k=50, seed=1)
        assert result.solved
        assert result.engine == "fair"

    def test_windowed_protocol_routed(self):
        result = simulate(ExpBackonBackoff(), k=50, seed=1)
        assert result.engine == "window"

    def test_engine_override(self):
        result = simulate(OneFailAdaptive(), k=10, seed=1, engine="slot")
        assert result.engine == "slot"
        assert result.solved

    def test_max_slots_forwarded(self):
        result = simulate(OneFailAdaptive(), k=50, seed=1, max_slots=10)
        assert not result.solved

    def test_seed_reproducibility_across_calls(self):
        assert simulate(OneFailAdaptive(), 80, seed=5).makespan == simulate(
            OneFailAdaptive(), 80, seed=5
        ).makespan


class TestSimulateWithArrivals:
    def test_poisson_arrivals_end_to_end(self):
        result = simulate(OneFailAdaptive(), k=16, seed=2, arrivals=PoissonArrival(k=16, rate=0.2))
        assert result.solved
        assert result.engine == "slot"
        assert result.metadata["arrivals"] == "PoissonArrival"
        assert len(result.metadata["latencies"]) == 16
        assert all(latency >= 0 for latency in result.metadata["latencies"])

    def test_bursty_arrivals_end_to_end(self):
        arrivals = BurstyArrival(bursts=2, burst_size=5, gap=100)
        result = simulate(OneFailAdaptive(), k=10, seed=2, arrivals=arrivals)
        assert result.solved
        assert result.successes == 10

    def test_windowed_protocol_with_arrivals_uses_slot_engine(self):
        result = simulate(ExpBackonBackoff(), k=12, seed=1, arrivals=PoissonArrival(k=12, rate=0.3))
        assert result.engine == "slot"
        assert result.solved

    def test_k_mismatch_rejected(self):
        with pytest.raises(ValueError):
            simulate(OneFailAdaptive(), k=5, seed=0, arrivals=PoissonArrival(k=6, rate=0.5))

    def test_arrivals_reproducible(self):
        arrivals = PoissonArrival(k=20, rate=0.1)
        first = simulate(OneFailAdaptive(), k=20, seed=9, arrivals=arrivals)
        second = simulate(OneFailAdaptive(), k=20, seed=9, arrivals=arrivals)
        assert first == second
