"""Distributional parity and eligibility tests for the windowed batch engine.

The windowed batch engine's lockstep RNG cannot be bit-identical to the
per-run window engine's stream (all replications draw from one interleaved
generator), so — exactly like the fair batch engine is validated against the
per-run fair engine — it is validated *distributionally*: same makespan mean
and quantiles within sampling tolerance, same solved rate at a binding slot
cap.  These tests gate the new hot path for Exp Back-on/Back-off and every
member of the monotone back-off family.

The second half pins the eligibility contract through the registry: windowed
protocols with a shared schedule batch, windowed protocols without one (and
everything the windowed kind excludes) silently take the per-run path.
"""

from __future__ import annotations

import math
from collections.abc import Iterator
from typing import ClassVar

import numpy as np
import pytest

from repro.channel.model import ChannelModel, FeedbackModel
from repro.channel.trace import ExecutionTrace
from repro.core.exp_backon_backoff import ExpBackonBackoff
from repro.core.one_fail_adaptive import OneFailAdaptive
from repro.engine.batch_window_engine import BatchWindowEngine
from repro.engine.dispatch import pick_engine, simulate, simulate_batch
from repro.engine.window_engine import WindowEngine
from repro.experiments.config import ExperimentConfig, ProtocolSpec
from repro.experiments.runner import run_sweep
from repro.protocols.backoff import (
    ExponentialBackoff,
    LogBackoff,
    LogLogIteratedBackoff,
    PolynomialBackoff,
)
from repro.protocols.base import WindowedProtocol
from repro.scenarios.scenario import Scenario
from repro.scenarios.session import Session
from repro.util.rng import derive_seeds

#: Every windowed protocol with a shared schedule, each with a moderate k:
#: Algorithm 2 exercises the sawtooth schedule (saturated descents + wide
#: delivery windows), the monotone family the ever-growing schedules.
BATCHABLE_CASES = [
    pytest.param(lambda k: ExpBackonBackoff(), 150, id="ebb"),
    pytest.param(lambda k: ExponentialBackoff(), 150, id="exp"),
    pytest.param(lambda k: PolynomialBackoff(), 120, id="poly"),
    pytest.param(lambda k: LogBackoff(), 120, id="log"),
    pytest.param(lambda k: LogLogIteratedBackoff(), 150, id="loglog"),
]

RUNS = 300


def _batch_makespans(factory, k: int, runs: int = RUNS, root_seed: int = 1) -> list[int]:
    seeds = derive_seeds(root_seed, runs)
    results = BatchWindowEngine().simulate_batch(factory(k), k, seeds)
    assert all(result.solved for result in results)
    return [result.makespan for result in results]


def _serial_makespans(factory, k: int, runs: int = RUNS, root_seed: int = 2) -> list[int]:
    engine = WindowEngine()
    return [
        engine.simulate(factory(k), k, seed=seed).makespan for seed in derive_seeds(root_seed, runs)
    ]


class TestDistributionalParity:
    @pytest.mark.parametrize("factory,k", BATCHABLE_CASES)
    def test_makespan_mean_matches_window_engine(self, factory, k):
        """Two-sample z-test on the means, 4-sigma threshold (as in validation.py)."""
        batch = np.asarray(_batch_makespans(factory, k))
        serial = np.asarray(_serial_makespans(factory, k))
        pooled = math.sqrt(batch.var(ddof=1) / batch.size + serial.var(ddof=1) / serial.size)
        z_score = abs(batch.mean() - serial.mean()) / pooled
        assert z_score < 4.0, (
            f"batch mean {batch.mean():.1f} vs serial mean {serial.mean():.1f} (z={z_score:.2f})"
        )

    @pytest.mark.parametrize("factory,k", BATCHABLE_CASES)
    def test_makespan_quantiles_match_window_engine(self, factory, k):
        batch = np.asarray(_batch_makespans(factory, k))
        serial = np.asarray(_serial_makespans(factory, k))
        for quantile in (0.25, 0.5, 0.75):
            batch_q = np.quantile(batch, quantile)
            serial_q = np.quantile(serial, quantile)
            assert batch_q == pytest.approx(serial_q, rel=0.10), (
                f"q{quantile}: batch {batch_q} vs serial {serial_q}"
            )

    @pytest.mark.parametrize(
        "factory,k,cap",
        [
            pytest.param(lambda k: ExpBackonBackoff(), 64, 321, id="ebb-mid"),
            pytest.param(lambda k: LogLogIteratedBackoff(), 64, 352, id="loglog-mid"),
        ],
    )
    def test_solved_rate_at_slot_cap_matches_window_engine(self, factory, k, cap):
        """With a binding cap both engines must censor the same fraction of runs."""
        runs = 400
        batch = BatchWindowEngine().simulate_batch(
            factory(k), k, derive_seeds(11, runs), max_slots=cap
        )
        engine = WindowEngine()
        serial = [
            engine.simulate(factory(k), k, seed=seed, max_slots=cap)
            for seed in derive_seeds(12, runs)
        ]
        batch_rate = sum(result.solved for result in batch) / runs
        serial_rate = sum(result.solved for result in serial) / runs
        pooled = (batch_rate + serial_rate) / 2
        sigma = math.sqrt(max(pooled * (1 - pooled), 1e-12) * 2 / runs)
        assert 0.0 < pooled < 1.0, "cap must bind for some runs and not others"
        assert abs(batch_rate - serial_rate) < 4.0 * sigma + 1e-9, (
            f"solved rate batch {batch_rate:.3f} vs serial {serial_rate:.3f}"
        )
        # Unsolved runs stop at a window boundary at or past the cap — the
        # same boundary semantics as the per-run window engine, whose
        # schedule is deterministic and shared.
        for result in batch:
            if not result.solved:
                assert result.slots_simulated >= cap
                assert result.makespan is None


class TestBatchResultStructure:
    @pytest.mark.parametrize("factory,k", BATCHABLE_CASES)
    def test_solved_run_invariants(self, factory, k):
        results = BatchWindowEngine().simulate_batch(factory(k), k, derive_seeds(3, 50))
        for result in results:
            assert result.solved
            assert result.engine == "batch-window"
            assert result.successes == k
            assert result.slots_simulated == result.makespan
            assert (
                result.successes + result.collisions + result.silences
                == result.slots_simulated
            )
            assert result.metadata["batch_reps"] == 50
            assert result.metadata["windows"] >= 1

    def test_results_in_seed_order(self):
        seeds = derive_seeds(9, 20)
        results = BatchWindowEngine().simulate_batch(ExpBackonBackoff(), 30, seeds)
        assert [result.seed for result in results] == seeds

    def test_deterministic_for_fixed_seed_tuple(self):
        seeds = derive_seeds(5, 25)
        first = BatchWindowEngine().simulate_batch(ExpBackonBackoff(), 40, seeds)
        second = BatchWindowEngine().simulate_batch(ExpBackonBackoff(), 40, seeds)
        assert first == second

    def test_single_run_simulate_api(self):
        result = BatchWindowEngine().simulate(ExpBackonBackoff(), 30, seed=4)
        assert result.solved
        assert result.engine == "batch-window"
        assert result.metadata["batch_reps"] == 1

    def test_chunked_wide_windows_preserve_invariants(self, monkeypatch):
        """Row-chunked occupancy (bounded memory) keeps every invariant.

        Forcing a tiny chunk cap makes every wide window take the multi-chunk
        path; the results must stay structurally sound, deterministic, and
        distributionally in line with the unchunked engine.
        """
        import repro.engine.batch_window_engine as module

        seeds = derive_seeds(21, 40)
        monkeypatch.setattr(module, "_MAX_WINDOW_CELLS", 64)
        chunked = BatchWindowEngine().simulate_batch(ExpBackonBackoff(), 100, seeds)
        again = BatchWindowEngine().simulate_batch(ExpBackonBackoff(), 100, seeds)
        assert chunked == again  # chunk boundaries are deterministic
        for result in chunked:
            assert result.solved
            assert result.successes == 100
            assert result.slots_simulated == result.makespan
            assert (
                result.successes + result.collisions + result.silences
                == result.slots_simulated
            )
        monkeypatch.undo()
        unchunked = BatchWindowEngine().simulate_batch(ExpBackonBackoff(), 100, derive_seeds(22, 40))
        chunked_mean = np.mean([result.makespan for result in chunked])
        unchunked_mean = np.mean([result.makespan for result in unchunked])
        assert chunked_mean == pytest.approx(unchunked_mean, rel=0.15)

    def test_unsolved_runs_count_every_slot(self):
        results = BatchWindowEngine().simulate_batch(
            ExpBackonBackoff(), 1_000, derive_seeds(7, 10), max_slots=50
        )
        for result in results:
            assert not result.solved
            assert result.successes + result.collisions + result.silences == (
                result.slots_simulated
            )


class TestEngineChecks:
    def test_rejects_non_windowed_protocol(self):
        with pytest.raises(TypeError):
            BatchWindowEngine().simulate_batch(OneFailAdaptive(), 10, [0, 1])

    def test_rejects_windowed_protocol_without_schedule_state(self):
        class FeedbackWindowed(WindowedProtocol):
            name: ClassVar[str] = "test-batch-window-feedback"

            def window_lengths(self) -> Iterator[int]:
                while True:
                    yield 4

        with pytest.raises(ValueError, match="shared window schedule"):
            BatchWindowEngine().simulate_batch(FeedbackWindowed(), 10, [0, 1])
        assert not BatchWindowEngine.supports(FeedbackWindowed())

    def test_rejects_empty_seed_list(self):
        with pytest.raises(ValueError):
            BatchWindowEngine().simulate_batch(ExpBackonBackoff(), 10, [])

    def test_rejects_trace(self):
        with pytest.raises(ValueError, match="trace"):
            BatchWindowEngine().simulate(ExpBackonBackoff(), 10, seed=0, trace=ExecutionTrace())

    def test_requires_paper_channel(self):
        with pytest.raises(ValueError):
            BatchWindowEngine(channel=ChannelModel(feedback=FeedbackModel.COLLISION_DETECTION))
        with pytest.raises(ValueError):
            BatchWindowEngine(channel=ChannelModel(acknowledgements=False))

    def test_supports_covers_the_windowed_suite(self):
        assert BatchWindowEngine.supports(ExpBackonBackoff())
        assert BatchWindowEngine.supports(ExponentialBackoff())
        assert BatchWindowEngine.supports(PolynomialBackoff())
        assert BatchWindowEngine.supports(LogBackoff())
        assert BatchWindowEngine.supports(LogLogIteratedBackoff())
        assert not BatchWindowEngine.supports(OneFailAdaptive())


class TestDispatch:
    def test_pick_engine_batch_window(self):
        assert isinstance(pick_engine(ExpBackonBackoff(), engine="batch-window"), BatchWindowEngine)

    def test_auto_still_prefers_window_engine_for_single_runs(self):
        assert isinstance(pick_engine(ExpBackonBackoff()), WindowEngine)
        assert simulate(ExpBackonBackoff(), k=30, seed=1).engine == "window"

    def test_simulate_front_door_with_batch_window_engine(self):
        result = simulate(ExpBackonBackoff(), k=30, seed=1, engine="batch-window")
        assert result.solved
        assert result.engine == "batch-window"

    def test_simulate_batch_front_door_routes_windowed_protocols(self):
        results = simulate_batch(ExpBackonBackoff(), 30, [0, 1, 2])
        assert len(results) == 3
        assert all(result.engine == "batch-window" for result in results)

    def test_fair_engine_selector_rejected_for_windowed_protocol(self):
        with pytest.raises(ValueError, match="protocol kinds"):
            pick_engine(ExpBackonBackoff(), engine="batch")

    def test_simulate_batch_diagnoses_selector_problems(self):
        # A per-run selector is a selector problem, not a kernel problem.
        with pytest.raises(ValueError, match="not a batched engine"):
            simulate_batch(ExpBackonBackoff(), 10, [0, 1], engine="window")
        # A typo gets the registry's enumerating unknown-engine error.
        with pytest.raises(ValueError, match="unknown engine"):
            simulate_batch(ExpBackonBackoff(), 10, [0, 1], engine="bacth")


class TestSweepAndSessionRouting:
    def test_sweep_batches_windowed_cells(self):
        spec = ProtocolSpec(key="ebb", label="EBB", factory=lambda k: ExpBackonBackoff())
        config = ExperimentConfig(k_values=[40], runs=4, seed=17)
        sweep = run_sweep([spec], config)
        assert all(result.engine == "batch-window" for result in sweep.cell("ebb", 40).results)

    def test_sweep_batch_false_replays_per_run_streams(self):
        spec = ProtocolSpec(key="ebb", label="EBB", factory=lambda k: ExpBackonBackoff())
        config = ExperimentConfig(k_values=[40], runs=4, seed=17, batch=False)
        sweep = run_sweep([spec], config)
        assert all(result.engine == "window" for result in sweep.cell("ebb", 40).results)

    def test_session_explicit_batch_window_engine(self):
        scenario = Scenario(protocol="exp-backon-backoff", k=50, replications=3, seed=5,
                            engine="batch-window")
        # An explicitly selected batch engine batches even in a batch=False
        # session (same contract as engine="batch" for fair cells).
        result_set = Session(batch=False).run(scenario)
        assert result_set.engine_used == "batch-window"
        assert result_set.results[0].metadata["batch_reps"] == 3

    def test_session_cached_batch_window_cells_reused(self, tmp_path):
        scenario = Scenario(protocol="exp-backon-backoff", k=50, replications=4, seed=5)
        first = Session(store_dir=tmp_path).run(scenario)
        second = Session(store_dir=tmp_path).run(scenario)
        assert first.new_runs == 4 and first.cached_runs == 0
        assert second.new_runs == 0 and second.cached_runs == 4
        assert second.results == first.results

    def test_session_batch_store_not_served_to_per_run_session(self, tmp_path):
        scenario = Scenario(protocol="exp-backon-backoff", k=50, replications=4, seed=5)
        Session(store_dir=tmp_path).run(scenario)
        # Cached-run reuse is keyed by engine + batch_reps: a per-run session
        # must not mix batch-window samples into its result set.
        per_run = Session(store_dir=tmp_path, batch=False).run(scenario)
        assert per_run.engine_used == "window"
        assert per_run.new_runs == 4
