"""Cross-engine parity: structural invariants shared by every engine.

The three engines sample the same stochastic process with different random
streams, so their per-seed numbers differ; what must agree *exactly* is the
shape of what they report.  Historically the window engine diverged from the
node-level reference in two ways — it kept counting the final window past the
last delivery, and its traces reported a constant ``active_before`` for every
slot of a window — so these tests pin the shared contract for all engines:

* solved runs stop at the final delivery (``slots_simulated == makespan``);
* the outcome counters partition the simulated slots;
* traces record the true per-slot active count, which starts at ``k`` and
  decreases by exactly one at every success.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.channel.model import SlotOutcome
from repro.channel.trace import ExecutionTrace
from repro.core.exp_backon_backoff import ExpBackonBackoff
from repro.core.one_fail_adaptive import OneFailAdaptive
from repro.engine.fair_engine import FairEngine
from repro.engine.slot_engine import SlotEngine
from repro.engine.window_engine import WindowEngine
from repro.protocols.backoff import (
    ExponentialBackoff,
    LogBackoff,
    LogLogIteratedBackoff,
    PolynomialBackoff,
)

#: (engine factory, protocol factory) pairs: each engine with a protocol it
#: supports.  The slot engine is the reference; the reduced engines must
#: match its structure on every protocol class they specialise — the fair
#: engine on the fair kind, the window engine on Exp Back-on/Back-off and
#: the whole monotone back-off family.
ENGINE_CASES = [
    pytest.param(SlotEngine, OneFailAdaptive, id="slot-ofa"),
    pytest.param(SlotEngine, ExpBackonBackoff, id="slot-ebb"),
    pytest.param(FairEngine, OneFailAdaptive, id="fair-ofa"),
    pytest.param(WindowEngine, ExpBackonBackoff, id="window-ebb"),
    pytest.param(WindowEngine, ExponentialBackoff, id="window-exp"),
    pytest.param(WindowEngine, PolynomialBackoff, id="window-poly"),
    pytest.param(WindowEngine, LogBackoff, id="window-log"),
    pytest.param(WindowEngine, LogLogIteratedBackoff, id="window-loglog"),
    pytest.param(SlotEngine, LogLogIteratedBackoff, id="slot-loglog"),
]

#: The windowed protocols whose window-engine reduction is validated
#: distributionally against the node-level reference below.
WINDOWED_PROTOCOLS = [
    pytest.param(ExpBackonBackoff, id="ebb"),
    pytest.param(ExponentialBackoff, id="exp"),
    pytest.param(PolynomialBackoff, id="poly"),
    pytest.param(LogBackoff, id="log"),
    pytest.param(LogLogIteratedBackoff, id="loglog"),
]

SEEDS = [0, 1, 7]
K = 40


@pytest.mark.parametrize("engine_cls,protocol_cls", ENGINE_CASES)
class TestSolvedRunParity:
    def test_stops_at_final_delivery(self, engine_cls, protocol_cls):
        for seed in SEEDS:
            result = engine_cls().simulate(protocol_cls(), K, seed=seed)
            assert result.solved
            assert result.slots_simulated == result.makespan

    def test_counters_partition_slots(self, engine_cls, protocol_cls):
        for seed in SEEDS:
            result = engine_cls().simulate(protocol_cls(), K, seed=seed)
            assert result.successes + result.collisions + result.silences == result.slots_simulated
            assert result.successes == K

    def test_trace_covers_simulated_slots(self, engine_cls, protocol_cls):
        trace = ExecutionTrace()
        result = engine_cls().simulate(protocol_cls(), K, seed=3, trace=trace)
        assert len(trace) == result.slots_simulated
        assert [record.slot for record in trace.records] == list(range(result.slots_simulated))

    def test_trace_active_before_counts_down_at_successes(self, engine_cls, protocol_cls):
        trace = ExecutionTrace()
        engine_cls().simulate(protocol_cls(), K, seed=5, trace=trace)
        active = K
        for record in trace.records:
            assert record.active_before == active
            if record.outcome is SlotOutcome.SUCCESS:
                active -= 1
        assert active == 0

    def test_trace_ends_with_success(self, engine_cls, protocol_cls):
        trace = ExecutionTrace()
        engine_cls().simulate(protocol_cls(), K, seed=9, trace=trace)
        assert trace.records[-1].outcome is SlotOutcome.SUCCESS
        assert trace.records[-1].active_before == 1


@pytest.mark.parametrize("protocol_cls", WINDOWED_PROTOCOLS)
class TestWindowVsSlotDistributionalParity:
    """Window-engine vs node-level makespans for the whole windowed roster.

    The structural checks above pin the shape of what the engines report;
    these pin the *distribution*: for Exp Back-on/Back-off and every member
    of the monotone back-off family, the balls-in-bins reduction must sample
    the same makespan distribution as simulating every station explicitly
    (two-sample z-test on the means, 4-sigma threshold as in validation.py).
    """

    RUNS = 60
    K = 32

    def test_makespan_mean_matches_slot_engine(self, protocol_cls):
        window = np.asarray(
            [
                WindowEngine().simulate(protocol_cls(), self.K, seed=seed).makespan
                for seed in range(self.RUNS)
            ],
            dtype=float,
        )
        slot = np.asarray(
            [
                SlotEngine().simulate(protocol_cls(), self.K, seed=1_000 + seed).makespan
                for seed in range(self.RUNS)
            ],
            dtype=float,
        )
        pooled = math.sqrt(window.var(ddof=1) / window.size + slot.var(ddof=1) / slot.size)
        z_score = abs(window.mean() - slot.mean()) / pooled
        assert z_score < 4.0, (
            f"window mean {window.mean():.1f} vs slot mean {slot.mean():.1f} (z={z_score:.2f})"
        )


class TestWindowEngineTruncationRegression:
    """The specific divergences of the pre-fix window engine."""

    def test_no_accounting_past_final_delivery(self, window_engine, slot_engine):
        # Both engines must agree that a solved run simulates exactly
        # `makespan` slots; before the fix the window engine counted the
        # whole final window.
        for seed in range(5):
            window_result = window_engine.simulate(ExpBackonBackoff(), 25, seed=seed)
            slot_result = slot_engine.simulate(ExpBackonBackoff(), 25, seed=seed)
            assert window_result.slots_simulated == window_result.makespan
            assert slot_result.slots_simulated == slot_result.makespan

    def test_unsolved_runs_still_count_every_slot(self, window_engine):
        result = window_engine.simulate(ExpBackonBackoff(), 1_000, seed=0, max_slots=50)
        assert not result.solved
        assert result.successes + result.collisions + result.silences == result.slots_simulated

    def test_active_before_varies_within_window(self, window_engine):
        # With enough deliveries per window, some window must contain two
        # successes, so a constant per-window active count would be wrong.
        trace = ExecutionTrace()
        window_engine.simulate(ExpBackonBackoff(), 200, seed=2, trace=trace)
        per_slot = [record.active_before for record in trace.records]
        assert len(set(per_slot)) > 2
        assert per_slot[0] == 200
