"""Tests for the SimulationResult invariants."""

from __future__ import annotations

import pytest

from repro.engine.result import SimulationResult


def make_result(**overrides):
    defaults = dict(
        solved=True,
        makespan=50,
        k=10,
        slots_simulated=50,
        successes=10,
        collisions=20,
        silences=20,
        protocol="one-fail-adaptive",
        engine="fair",
        seed=1,
    )
    defaults.update(overrides)
    return SimulationResult(**defaults)


class TestInvariants:
    def test_valid_solved_result(self):
        result = make_result()
        assert result.steps_per_node == 5.0

    def test_solved_requires_makespan(self):
        with pytest.raises(ValueError):
            make_result(makespan=None)

    def test_makespan_cannot_beat_one_per_slot(self):
        with pytest.raises(ValueError):
            make_result(makespan=5)  # k = 10 > 5

    def test_solved_requires_k_successes(self):
        with pytest.raises(ValueError):
            make_result(successes=9)

    def test_unsolved_must_not_report_makespan(self):
        with pytest.raises(ValueError):
            make_result(solved=False, makespan=100, successes=3)

    def test_unsolved_result_valid(self):
        result = make_result(solved=False, makespan=None, successes=3)
        assert not result.solved

    def test_steps_per_node_undefined_when_unsolved(self):
        result = make_result(solved=False, makespan=None, successes=3)
        with pytest.raises(ValueError):
            _ = result.steps_per_node


class TestSerialisation:
    def test_to_dict_round_trip_fields(self):
        result = make_result(metadata={"windows": 7})
        payload = result.to_dict()
        assert payload["makespan"] == 50
        assert payload["protocol"] == "one-fail-adaptive"
        assert payload["meta_windows"] == 7

    def test_frozen(self):
        result = make_result()
        with pytest.raises(AttributeError):
            result.makespan = 99
