"""Tests for the O(1)-per-slot fair-protocol engine."""

from __future__ import annotations

import pytest

from repro.channel.model import ChannelModel, FeedbackModel
from repro.channel.trace import ExecutionTrace
from repro.core.exp_backon_backoff import ExpBackonBackoff
from repro.core.one_fail_adaptive import OneFailAdaptive
from repro.engine.fair_engine import FairEngine
from repro.protocols.aloha import SlottedAloha
from repro.protocols.base import FairProtocol
from repro.protocols.log_fails_adaptive import LogFailsAdaptive


class TestBasicOperation:
    @pytest.mark.parametrize("k", [1, 2, 10, 500])
    def test_solves_and_counts(self, k, fair_engine):
        result = fair_engine.simulate(OneFailAdaptive(), k, seed=1)
        assert result.solved
        assert result.successes == k
        assert result.makespan >= k
        assert result.successes + result.collisions + result.silences == result.slots_simulated

    def test_engine_name_recorded(self, fair_engine):
        result = fair_engine.simulate(OneFailAdaptive(), 5, seed=1)
        assert result.engine == "fair"
        assert result.protocol == "one-fail-adaptive"

    def test_deterministic_given_seed(self, fair_engine):
        a = fair_engine.simulate(OneFailAdaptive(), 100, seed=9)
        b = fair_engine.simulate(OneFailAdaptive(), 100, seed=9)
        assert a.makespan == b.makespan

    def test_different_seeds_differ(self, fair_engine):
        makespans = {
            fair_engine.simulate(OneFailAdaptive(), 100, seed=seed).makespan for seed in range(5)
        }
        assert len(makespans) > 1

    def test_prototype_not_mutated(self, fair_engine):
        prototype = OneFailAdaptive()
        fair_engine.simulate(prototype, 50, seed=0)
        assert prototype.messages_received == 0

    def test_single_node_aloha_finishes_in_one_slot(self, fair_engine):
        result = fair_engine.simulate(SlottedAloha(k=1), 1, seed=0)
        assert result.makespan == 1

    def test_works_for_log_fails_adaptive(self, fair_engine):
        result = fair_engine.simulate(LogFailsAdaptive.for_k(200), 200, seed=3)
        assert result.solved

    def test_invalid_k_rejected(self, fair_engine):
        with pytest.raises(ValueError):
            fair_engine.simulate(OneFailAdaptive(), 0, seed=0)


class TestProtocolClassChecks:
    def test_rejects_non_fair_protocol(self, fair_engine):
        with pytest.raises(TypeError):
            fair_engine.simulate(ExpBackonBackoff(), 10, seed=0)

    def test_rejects_state_dependent_on_own_transmission(self, fair_engine):
        class Cheater(OneFailAdaptive):
            name = "one-fail-adaptive"  # reuse registration
            state_depends_on_own_transmission = True

        with pytest.raises(ValueError):
            fair_engine.simulate(Cheater(), 10, seed=0)


class TestChannelRestrictions:
    def test_requires_no_cd_channel(self):
        with pytest.raises(ValueError):
            FairEngine(channel=ChannelModel(feedback=FeedbackModel.COLLISION_DETECTION))

    def test_requires_acknowledgements(self):
        with pytest.raises(ValueError):
            FairEngine(channel=ChannelModel(acknowledgements=False))


class TestSlotCapAndTrace:
    def test_unsolved_when_capped(self, fair_engine):
        result = fair_engine.simulate(OneFailAdaptive(), 100, seed=0, max_slots=10)
        assert not result.solved
        assert result.slots_simulated == 10

    def test_trace_collected(self, fair_engine):
        trace = ExecutionTrace()
        result = fair_engine.simulate(OneFailAdaptive(), 20, seed=1, trace=trace)
        assert len(trace) == result.slots_simulated
        assert trace.successes == 20
        assert trace.success_slots()[-1] == result.makespan - 1


class TestStatisticalBehaviour:
    def test_ofa_ratio_matches_paper_at_moderate_k(self, fair_engine):
        """Table 1 reports steps/k ~= 7.4 for One-fail Adaptive at k = 10^3."""
        k = 1_000
        ratios = [
            fair_engine.simulate(OneFailAdaptive(), k, seed=seed).steps_per_node
            for seed in range(5)
        ]
        mean = sum(ratios) / len(ratios)
        assert 6.5 < mean < 8.3

    def test_makespan_scales_linearly(self, fair_engine):
        small = fair_engine.simulate(OneFailAdaptive(), 500, seed=2).makespan
        large = fair_engine.simulate(OneFailAdaptive(), 5_000, seed=2).makespan
        assert 7 < large / small < 13  # ~10x for 10x nodes


class TestFairReductionCorrectness:
    def test_collision_probability_consistency(self, fair_engine):
        """With p = 1 and several stations every slot must be a collision until capped."""

        class AlwaysTransmit(FairProtocol):
            name = "test-always-transmit"

            def reset(self):
                pass

            def transmission_probability(self, slot):
                return 1.0

            def notify(self, observation):
                pass

        result = fair_engine.simulate(AlwaysTransmit(), 5, seed=0, max_slots=50)
        assert not result.solved
        assert result.collisions == 50
        assert result.successes == 0
