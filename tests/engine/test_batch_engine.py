"""Distributional parity and eligibility tests for the batch engine.

The batch engine's lockstep RNG cannot be bit-identical to the per-run fair
engine's stream (all replications draw from one interleaved generator), so —
exactly like the fair/window engines are validated against the node-level
reference — it is validated *distributionally*: same makespan mean and
quantiles within sampling tolerance, same solved rate at a binding slot cap.

The second half pins the sweep runner's eligibility contract: fair protocols
with a vectorised state batch, everything else (non-fair protocols, fair
protocols without a kernel, custom arrivals, explicit per-run engines)
silently takes the per-run path.
"""

from __future__ import annotations

import math
from typing import ClassVar

import numpy as np
import pytest

from repro.channel.arrivals import PoissonArrival
from repro.channel.model import ChannelModel, FeedbackModel
from repro.channel.trace import ExecutionTrace
from repro.core.exp_backon_backoff import ExpBackonBackoff
from repro.core.one_fail_adaptive import OneFailAdaptive
from repro.engine.batch_engine import BatchFairEngine
from repro.engine.dispatch import pick_engine, simulate, simulate_batch
from repro.engine.fair_engine import FairEngine
from repro.experiments.config import ExperimentConfig, ProtocolSpec
from repro.experiments.runner import run_sweep
from repro.protocols.aloha import SlottedAloha
from repro.protocols.base import FairBatchState, FairProtocol
from repro.protocols.log_fails_adaptive import LogFailsAdaptive
from repro.util.rng import derive_seeds

#: Fair protocols with a vectorised batch state, each with a moderate k.
#: Slotted ALOHA exercises the geometric silence-skipping path (it declares
#: probability_constant_between_receptions); the adaptive protocols exercise
#: the slot-by-slot lockstep path.
BATCHABLE_CASES = [
    pytest.param(lambda k: OneFailAdaptive(), 150, id="ofa"),
    pytest.param(lambda k: SlottedAloha(k=k), 150, id="aloha"),
    pytest.param(lambda k: SlottedAloha(k=k, track_deliveries=False), 80, id="aloha-static"),
    pytest.param(lambda k: LogFailsAdaptive.for_k(k), 150, id="lfa"),
]

RUNS = 300


def _batch_makespans(factory, k: int, runs: int = RUNS, root_seed: int = 1) -> list[int]:
    seeds = derive_seeds(root_seed, runs)
    results = BatchFairEngine().simulate_batch(factory(k), k, seeds)
    assert all(result.solved for result in results)
    return [result.makespan for result in results]


def _serial_makespans(factory, k: int, runs: int = RUNS, root_seed: int = 2) -> list[int]:
    engine = FairEngine()
    return [engine.simulate(factory(k), k, seed=seed).makespan for seed in derive_seeds(root_seed, runs)]


class TestDistributionalParity:
    @pytest.mark.parametrize("factory,k", BATCHABLE_CASES)
    def test_makespan_mean_matches_fair_engine(self, factory, k):
        """Two-sample z-test on the means, 4-sigma threshold (as in validation.py)."""
        batch = np.asarray(_batch_makespans(factory, k))
        serial = np.asarray(_serial_makespans(factory, k))
        pooled = math.sqrt(batch.var(ddof=1) / batch.size + serial.var(ddof=1) / serial.size)
        z_score = abs(batch.mean() - serial.mean()) / pooled
        assert z_score < 4.0, (
            f"batch mean {batch.mean():.1f} vs serial mean {serial.mean():.1f} (z={z_score:.2f})"
        )

    @pytest.mark.parametrize("factory,k", BATCHABLE_CASES)
    def test_makespan_quantiles_match_fair_engine(self, factory, k):
        batch = np.asarray(_batch_makespans(factory, k))
        serial = np.asarray(_serial_makespans(factory, k))
        for quantile in (0.25, 0.5, 0.75):
            batch_q = np.quantile(batch, quantile)
            serial_q = np.quantile(serial, quantile)
            assert batch_q == pytest.approx(serial_q, rel=0.10), (
                f"q{quantile}: batch {batch_q} vs serial {serial_q}"
            )

    @pytest.mark.parametrize(
        "factory,k,cap",
        [
            pytest.param(lambda k: OneFailAdaptive(), 64, 400, id="ofa-mid"),
            pytest.param(lambda k: SlottedAloha(k=k), 64, 170, id="aloha-mid"),
        ],
    )
    def test_solved_rate_at_slot_cap_matches_fair_engine(self, factory, k, cap):
        """With a binding cap both engines must censor the same fraction of runs."""
        runs = 400
        batch = BatchFairEngine().simulate_batch(
            factory(k), k, derive_seeds(11, runs), max_slots=cap
        )
        engine = FairEngine()
        serial = [
            engine.simulate(factory(k), k, seed=seed, max_slots=cap)
            for seed in derive_seeds(12, runs)
        ]
        batch_rate = sum(result.solved for result in batch) / runs
        serial_rate = sum(result.solved for result in serial) / runs
        pooled = (batch_rate + serial_rate) / 2
        sigma = math.sqrt(max(pooled * (1 - pooled), 1e-12) * 2 / runs)
        assert 0.0 < pooled < 1.0, "cap must bind for some runs and not others"
        assert abs(batch_rate - serial_rate) < 4.0 * sigma + 1e-9, (
            f"solved rate batch {batch_rate:.3f} vs serial {serial_rate:.3f}"
        )
        for result in batch:
            if not result.solved:
                assert result.slots_simulated == cap


class TestBatchResultStructure:
    @pytest.mark.parametrize("factory,k", BATCHABLE_CASES)
    def test_solved_run_invariants(self, factory, k):
        results = BatchFairEngine().simulate_batch(factory(k), k, derive_seeds(3, 50))
        for result in results:
            assert result.solved
            assert result.engine == "batch"
            assert result.successes == k
            assert result.slots_simulated == result.makespan
            assert (
                result.successes + result.collisions + result.silences
                == result.slots_simulated
            )
            assert result.metadata["batch_reps"] == 50

    def test_results_in_seed_order(self):
        seeds = derive_seeds(9, 20)
        results = BatchFairEngine().simulate_batch(OneFailAdaptive(), 30, seeds)
        assert [result.seed for result in results] == seeds

    def test_deterministic_given_seeds(self):
        seeds = derive_seeds(5, 25)
        first = BatchFairEngine().simulate_batch(OneFailAdaptive(), 40, seeds)
        second = BatchFairEngine().simulate_batch(OneFailAdaptive(), 40, seeds)
        assert first == second

    def test_unsolved_at_cap_counts_every_slot(self):
        cap = 20
        results = BatchFairEngine().simulate_batch(
            OneFailAdaptive(), 100, derive_seeds(4, 30), max_slots=cap
        )
        for result in results:
            assert not result.solved
            assert result.makespan is None
            assert result.slots_simulated == cap
            assert (
                result.successes + result.collisions + result.silences == cap
            )

    def test_prototype_not_mutated(self):
        prototype = OneFailAdaptive()
        BatchFairEngine().simulate_batch(prototype, 50, derive_seeds(0, 10))
        assert prototype.messages_received == 0

    def test_single_seed_batch_via_simulate(self):
        result = BatchFairEngine().simulate(SlottedAloha(k=1), 1, seed=0)
        assert result.solved
        assert result.makespan == 1
        assert result.engine == "batch"

    def test_silence_skipping_stuck_protocol_burns_to_cap(self):
        """p = 0 under the skip flag must censor at the cap, not loop forever."""

        class _SilentState(FairBatchState):
            def __init__(self, reps):
                self.reps = reps

            def probabilities(self, slot):
                return np.zeros(self.reps)

            def observe_receptions(self, slot, received):
                pass

            def compact(self, keep):
                self.reps = int(np.count_nonzero(keep))

        class NeverTransmit(FairProtocol):
            name: ClassVar[str] = "test-batch-never-transmit"
            probability_constant_between_receptions: ClassVar[bool] = True

            def reset(self):
                pass

            def transmission_probability(self, slot):
                return 0.0

            def notify(self, observation):
                pass

            def make_batch_state(self, reps):
                return _SilentState(reps)

        results = BatchFairEngine().simulate_batch(
            NeverTransmit(), 5, [1, 2, 3], max_slots=40
        )
        for result in results:
            assert not result.solved
            assert result.slots_simulated == 40
            assert result.silences == 40


class TestEngineChecks:
    def test_rejects_non_fair_protocol(self):
        with pytest.raises(TypeError):
            BatchFairEngine().simulate_batch(ExpBackonBackoff(), 10, [0, 1])

    def test_rejects_fair_protocol_without_kernel(self):
        class PlainFair(FairProtocol):
            name: ClassVar[str] = "test-batch-plain-fair"

            def reset(self):
                pass

            def transmission_probability(self, slot):
                return 0.5

            def notify(self, observation):
                pass

        with pytest.raises(ValueError, match="vectorised batch state"):
            BatchFairEngine().simulate_batch(PlainFair(), 10, [0, 1])
        assert not BatchFairEngine.supports(PlainFair())

    def test_rejects_empty_seed_list(self):
        with pytest.raises(ValueError):
            BatchFairEngine().simulate_batch(OneFailAdaptive(), 10, [])

    def test_rejects_trace(self):
        with pytest.raises(ValueError, match="trace"):
            BatchFairEngine().simulate(OneFailAdaptive(), 10, seed=0, trace=ExecutionTrace())

    def test_requires_paper_channel(self):
        with pytest.raises(ValueError):
            BatchFairEngine(channel=ChannelModel(feedback=FeedbackModel.COLLISION_DETECTION))
        with pytest.raises(ValueError):
            BatchFairEngine(channel=ChannelModel(acknowledgements=False))

    def test_supports_covers_the_suite(self):
        assert BatchFairEngine.supports(OneFailAdaptive())
        assert BatchFairEngine.supports(SlottedAloha(k=10))
        assert BatchFairEngine.supports(LogFailsAdaptive.for_k(10))
        assert not BatchFairEngine.supports(ExpBackonBackoff())


class TestDispatch:
    def test_pick_engine_batch(self):
        assert isinstance(pick_engine(OneFailAdaptive(), engine="batch"), BatchFairEngine)

    def test_auto_still_prefers_fair_engine_for_single_runs(self):
        assert isinstance(pick_engine(OneFailAdaptive()), FairEngine)
        assert simulate(OneFailAdaptive(), k=30, seed=1).engine == "fair"

    def test_batch_engine_rejected_with_arrivals(self):
        with pytest.raises(ValueError):
            pick_engine(
                OneFailAdaptive(), engine="batch", arrivals=PoissonArrival(k=10, rate=0.5)
            )

    def test_simulate_front_door_with_batch_engine(self):
        result = simulate(OneFailAdaptive(), k=30, seed=1, engine="batch")
        assert result.solved
        assert result.engine == "batch"

    def test_simulate_batch_front_door(self):
        results = simulate_batch(OneFailAdaptive(), 30, [0, 1, 2])
        assert len(results) == 3
        assert all(result.engine == "batch" for result in results)


def _sweep_config(**overrides) -> ExperimentConfig:
    defaults = dict(k_values=[40], runs=4, seed=17)
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestSweepEligibility:
    def test_eligible_cell_batches_by_default(self):
        spec = ProtocolSpec(key="ofa", label="OFA", factory=lambda k: OneFailAdaptive())
        sweep = run_sweep([spec], _sweep_config())
        cell = sweep.cell("ofa", 40)
        assert len(cell.results) == 4
        assert all(result.engine == "batch" for result in cell.results)
        assert len({result.seed for result in cell.results}) == 4

    def test_batch_false_replays_per_run_path(self):
        spec = ProtocolSpec(key="ofa", label="OFA", factory=lambda k: OneFailAdaptive())
        sweep = run_sweep([spec], _sweep_config(), batch=False)
        assert all(result.engine == "fair" for result in sweep.cell("ofa", 40).results)

    def test_config_batch_false_is_the_default_knob(self):
        spec = ProtocolSpec(key="ofa", label="OFA", factory=lambda k: OneFailAdaptive())
        sweep = run_sweep([spec], _sweep_config(batch=False))
        assert all(result.engine == "fair" for result in sweep.cell("ofa", 40).results)

    def test_non_fair_protocol_routes_to_its_own_batch_engine(self):
        # Windowed protocols are no longer "ineligible": the registry routes
        # them to the windowed batch engine instead of the fair one.
        spec = ProtocolSpec(key="ebb", label="EBB", factory=lambda k: ExpBackonBackoff())
        sweep = run_sweep([spec], _sweep_config())
        assert all(result.engine == "batch-window" for result in sweep.cell("ebb", 40).results)
        sweep = run_sweep([spec], _sweep_config(batch=False))
        assert all(result.engine == "window" for result in sweep.cell("ebb", 40).results)

    def test_fair_protocol_without_kernel_falls_back(self):
        class PlainFair(FairProtocol):
            name: ClassVar[str] = "test-sweep-plain-fair"

            def reset(self):
                self._remaining = 40

            def transmission_probability(self, slot):
                return 1.0 / max(self._remaining, 1)

            def notify(self, observation):
                if observation.received:
                    self._remaining = max(self._remaining - 1, 1)

        spec = ProtocolSpec(key="plain", label="Plain", factory=lambda k: PlainFair())
        sweep = run_sweep([spec], _sweep_config())
        assert all(result.engine == "fair" for result in sweep.cell("plain", 40).results)

    def test_custom_arrivals_fall_back_to_slot_engine(self):
        spec = ProtocolSpec(key="ofa", label="OFA", factory=lambda k: OneFailAdaptive())
        sweep = run_sweep(
            [spec],
            _sweep_config(k_values=[12], runs=2),
            arrivals_factory=lambda k: PoissonArrival(k=k, rate=0.2),
        )
        assert all(result.engine == "slot" for result in sweep.cell("ofa", 12).results)

    def test_explicit_per_run_engine_disables_batching(self):
        spec = ProtocolSpec(key="ofa", label="OFA", factory=lambda k: OneFailAdaptive())
        sweep = run_sweep([spec], _sweep_config(), engine="fair")
        assert all(result.engine == "fair" for result in sweep.cell("ofa", 40).results)

    def test_batched_sweep_deterministic_across_workers(self):
        spec = ProtocolSpec(key="ofa", label="OFA", factory=lambda k: OneFailAdaptive())
        config = _sweep_config(k_values=[20, 40], runs=3)
        serial = run_sweep([spec], config, workers=1)
        pooled = run_sweep([spec], config, workers=3)
        for key in serial.cells:
            assert serial.cells[key].results == pooled.cells[key].results

    def test_progress_still_counts_per_run(self):
        spec = ProtocolSpec(key="ofa", label="OFA", factory=lambda k: OneFailAdaptive())
        calls = []
        run_sweep(
            [spec],
            _sweep_config(runs=3),
            progress=lambda s, k, done, total: calls.append((s.key, k, done, total)),
        )
        assert calls == [("ofa", 40, 1, 3), ("ofa", 40, 2, 3), ("ofa", 40, 3, 3)]

    def test_mixed_suite_routes_per_protocol(self):
        specs = [
            ProtocolSpec(key="ofa", label="OFA", factory=lambda k: OneFailAdaptive()),
            ProtocolSpec(key="ebb", label="EBB", factory=lambda k: ExpBackonBackoff()),
        ]
        sweep = run_sweep(specs, _sweep_config())
        assert all(result.engine == "batch" for result in sweep.cell("ofa", 40).results)
        assert all(result.engine == "batch-window" for result in sweep.cell("ebb", 40).results)
