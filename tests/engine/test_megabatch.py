"""Fusion tests for the cross-cell mega-batch engines.

Three contracts are pinned here:

* **Distributional parity** — fused fair cells sample the same makespan
  process as the per-cell :class:`BatchFairEngine` (same mean and quantiles
  within sampling tolerance, same solved rate at a binding cap), for every
  fair protocol with a fused kernel.  Fused *windowed* cells go further:
  they consume their per-cell streams in exactly the order
  :class:`BatchWindowEngine` does and must be **bit-identical** to it.
* **Composition independence** — a cell's fused results are bit-identical no
  matter which group it is fused into (alone, with any siblings, across
  parameter variants), which is what makes resumed sweeps that re-fuse only
  the missing cells reproduce fresh ones exactly.
* **Routing** — the Session/sweep layer fuses every eligible cell, falls
  back per cell for the rest (slotted ALOHA keeps its geometric-skipping
  batch engine), and scatter-backs fused results into the store under the
  per-cell hashes.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np
import pytest

from repro.channel.arrivals import PoissonArrival
from repro.channel.trace import ExecutionTrace
from repro.core.exp_backon_backoff import ExpBackonBackoff
from repro.core.one_fail_adaptive import OneFailAdaptive
from repro.engine.batch_engine import BatchFairEngine
from repro.engine.batch_window_engine import BatchWindowEngine
from repro.engine.dispatch import simulate_megabatch
from repro.engine.megabatch import FusedCell, MegaFairEngine, MegaWindowEngine
from repro.engine.registry import fused_engine_for
from repro.experiments.config import ExperimentConfig, ProtocolSpec
from repro.experiments.runner import run_sweep
from repro.protocols.aloha import SlottedAloha
from repro.protocols.base import build_protocol
from repro.scenarios import Scenario, Session
from repro.util.rng import derive_seeds

#: Every fair protocol with a per-row fused kernel, as (spec, k) cases —
#: both Log-fails Adaptive variants of the paper's suite are distinct
#: parameterisations that must nonetheless share one fuse key.
FUSED_FAIR_CASES = [
    pytest.param("one-fail-adaptive", 150, id="ofa"),
    pytest.param("log-fails-adaptive(xi_t=0.5)", 150, id="lfa-xt2"),
    pytest.param("log-fails-adaptive(xi_t=0.1)", 150, id="lfa-xt10"),
]

#: Every windowed protocol with a fusable (feedback-oblivious) schedule.
FUSED_WINDOW_SPECS = [
    "exp-backon-backoff",
    "exponential-backoff",
    "log-backoff",
    "loglog-iterated-backoff",
    "polynomial-backoff",
]

RUNS = 300


def _fused_cell(spec: str, k: int, seeds, max_slots: int | None = None) -> FusedCell:
    return FusedCell(
        protocol=build_protocol(spec, k=k),
        k=k,
        seeds=tuple(seeds),
        max_slots=max_slots if max_slots is not None else 10_000 * k,
    )


def _mega_makespans(spec: str, k: int, runs: int = RUNS, root_seed: int = 1) -> list[int]:
    cell = _fused_cell(spec, k, derive_seeds(root_seed, runs))
    (results,) = MegaFairEngine().simulate_fused([cell])
    assert all(result.solved for result in results)
    return [result.makespan for result in results]


def _batch_makespans(spec: str, k: int, runs: int = RUNS, root_seed: int = 2) -> list[int]:
    protocol = build_protocol(spec, k=k)
    results = BatchFairEngine().simulate_batch(protocol, k, derive_seeds(root_seed, runs))
    assert all(result.solved for result in results)
    return [result.makespan for result in results]


class TestFusedFairDistributionalParity:
    """Fused fair sampling must match the per-cell batch engine's law."""

    @pytest.mark.parametrize("spec,k", FUSED_FAIR_CASES)
    def test_makespan_mean_matches_batch_engine(self, spec, k):
        """Two-sample z-test on the means, 4-sigma threshold (as in validation.py)."""
        fused = np.asarray(_mega_makespans(spec, k))
        batch = np.asarray(_batch_makespans(spec, k))
        pooled = math.sqrt(fused.var(ddof=1) / fused.size + batch.var(ddof=1) / batch.size)
        z_score = abs(fused.mean() - batch.mean()) / pooled
        assert z_score < 4.0, (
            f"fused mean {fused.mean():.1f} vs batch mean {batch.mean():.1f} (z={z_score:.2f})"
        )

    @pytest.mark.parametrize("spec,k", FUSED_FAIR_CASES)
    def test_makespan_quantiles_match_batch_engine(self, spec, k):
        fused = np.asarray(_mega_makespans(spec, k))
        batch = np.asarray(_batch_makespans(spec, k))
        for quantile in (0.25, 0.5, 0.75):
            fused_q = np.quantile(fused, quantile)
            batch_q = np.quantile(batch, quantile)
            assert fused_q == pytest.approx(batch_q, rel=0.10), (
                f"q{quantile}: fused {fused_q} vs batch {batch_q}"
            )

    def test_solved_rate_at_slot_cap_matches_batch_engine(self):
        """With a binding cap both engines must censor the same fraction of runs."""
        runs, k, cap = 400, 64, 400
        cell = _fused_cell("one-fail-adaptive", k, derive_seeds(11, runs), max_slots=cap)
        (fused,) = MegaFairEngine().simulate_fused([cell])
        batch = BatchFairEngine().simulate_batch(
            OneFailAdaptive(), k, derive_seeds(12, runs), max_slots=cap
        )
        fused_rate = sum(result.solved for result in fused) / runs
        batch_rate = sum(result.solved for result in batch) / runs
        pooled = (fused_rate + batch_rate) / 2
        sigma = math.sqrt(max(pooled * (1 - pooled), 1e-12) * 2 / runs)
        assert 0.0 < pooled < 1.0, "cap must bind for some runs and not others"
        assert abs(fused_rate - batch_rate) < 4.0 * sigma + 1e-9, (
            f"solved rate fused {fused_rate:.3f} vs batch {batch_rate:.3f}"
        )
        for result in fused:
            if not result.solved:
                assert result.slots_simulated == cap


class TestFusedWindowBitIdentity:
    """Fused windowed cells replay BatchWindowEngine's draws exactly."""

    @pytest.mark.parametrize("spec", FUSED_WINDOW_SPECS)
    def test_fused_group_matches_per_cell_batch_bit_for_bit(self, spec):
        cells = [
            _fused_cell(spec, 40, derive_seeds(3, 4)),
            _fused_cell(spec, 90, derive_seeds(4, 4)),
        ]
        fused = MegaWindowEngine().simulate_fused(cells)
        for cell, cell_results in zip(cells, fused):
            per_cell = BatchWindowEngine().simulate_batch(
                cell.protocol, cell.k, list(cell.seeds), max_slots=cell.max_slots
            )
            normalised = [
                dataclasses.replace(result, engine="batch-window") for result in cell_results
            ]
            assert normalised == per_cell

    def test_distinct_schedules_rejected(self):
        cells = [
            _fused_cell("exp-backon-backoff", 20, [1, 2]),
            _fused_cell("exponential-backoff", 20, [3, 4]),
        ]
        with pytest.raises(ValueError, match="one window schedule"):
            MegaWindowEngine().simulate_fused(cells)


class TestCompositionIndependence:
    """A cell's fused results never depend on its siblings."""

    def test_fair_cell_alone_vs_grouped(self):
        alone = MegaFairEngine().simulate_fused([_fused_cell("one-fail-adaptive", 60, derive_seeds(5, 3))])
        grouped = MegaFairEngine().simulate_fused(
            [
                _fused_cell("one-fail-adaptive", 200, derive_seeds(9, 3)),
                _fused_cell("one-fail-adaptive", 60, derive_seeds(5, 3)),
                _fused_cell("one-fail-adaptive", 15, derive_seeds(7, 2)),
            ]
        )
        assert grouped[1] == alone[0]

    def test_lfa_variants_fuse_into_one_kernel_without_interference(self):
        xt2 = _fused_cell("log-fails-adaptive(xi_t=0.5)", 50, derive_seeds(1, 3))
        xt10 = _fused_cell("log-fails-adaptive(xi_t=0.1)", 50, derive_seeds(2, 3))
        alone = MegaFairEngine().simulate_fused([xt2])
        mixed = MegaFairEngine().simulate_fused([xt10, xt2])
        assert mixed[1] == alone[0]

    def test_independence_across_chunk_boundaries(self):
        """Cells whose makespans straddle the pre-draw chunk size still match."""
        # k=400 OFA runs for thousands of slots — several refill boundaries.
        cell = _fused_cell("one-fail-adaptive", 400, derive_seeds(6, 2))
        sibling = _fused_cell("one-fail-adaptive", 10, derive_seeds(8, 2))
        alone = MegaFairEngine().simulate_fused([cell])
        grouped = MegaFairEngine().simulate_fused([cell, sibling])
        assert grouped[0] == alone[0]

    def test_windowed_cell_alone_vs_grouped(self):
        cell = _fused_cell("exp-backon-backoff", 70, derive_seeds(5, 3))
        alone = MegaWindowEngine().simulate_fused([cell])
        grouped = MegaWindowEngine().simulate_fused(
            [_fused_cell("exp-backon-backoff", 25, derive_seeds(6, 2)), cell]
        )
        assert grouped[1] == alone[0]


class TestMegaResultStructure:
    def test_solved_run_invariants(self):
        cells = [
            _fused_cell("one-fail-adaptive", 30, derive_seeds(3, 5)),
            _fused_cell("one-fail-adaptive", 80, derive_seeds(4, 2)),
        ]
        fused = MegaFairEngine().simulate_fused(cells)
        for cell, cell_results in zip(cells, fused):
            assert [result.seed for result in cell_results] == list(cell.seeds)
            for result in cell_results:
                assert result.solved
                assert result.engine == "mega"
                assert result.k == cell.k
                assert result.successes == cell.k
                assert result.slots_simulated == result.makespan
                assert (
                    result.successes + result.collisions + result.silences
                    == result.slots_simulated
                )
                assert result.metadata == {"batch_reps": len(cell.seeds)}

    def test_deterministic_given_seeds(self):
        cells = [_fused_cell("one-fail-adaptive", 40, derive_seeds(5, 4))]
        assert MegaFairEngine().simulate_fused(cells) == MegaFairEngine().simulate_fused(cells)

    def test_unsolved_at_cap_counts_every_slot(self):
        cell = _fused_cell("one-fail-adaptive", 100, derive_seeds(4, 6), max_slots=20)
        (results,) = MegaFairEngine().simulate_fused([cell])
        for result in results:
            assert not result.solved
            assert result.makespan is None
            assert result.slots_simulated == 20

    def test_per_cell_caps_bind_independently(self):
        """A capped cell retires while its uncapped sibling keeps stepping."""
        capped = _fused_cell("one-fail-adaptive", 100, derive_seeds(4, 3), max_slots=20)
        free = _fused_cell("one-fail-adaptive", 30, derive_seeds(5, 3))
        fused = MegaFairEngine().simulate_fused([capped, free])
        assert all(not result.solved and result.slots_simulated == 20 for result in fused[0])
        assert all(result.solved for result in fused[1])

    def test_prototype_not_mutated(self):
        prototype = OneFailAdaptive()
        MegaFairEngine().simulate_fused([FusedCell(prototype, 50, tuple(derive_seeds(0, 4)), 500_000)])
        assert prototype.messages_received == 0

    def test_simulate_batch_is_a_group_of_one(self):
        seeds = derive_seeds(7, 4)
        via_batch = MegaFairEngine().simulate_batch(OneFailAdaptive(), 40, seeds)
        (via_fused,) = MegaFairEngine().simulate_fused(
            [FusedCell(OneFailAdaptive(), 40, tuple(seeds), 400_000)]
        )
        assert via_batch == via_fused

    def test_single_run_via_simulate(self):
        result = MegaFairEngine().simulate(OneFailAdaptive(), 20, seed=3)
        assert result.solved and result.engine == "mega"

    def test_trace_rejected(self):
        with pytest.raises(ValueError, match="trace"):
            MegaFairEngine().simulate(OneFailAdaptive(), 20, seed=0, trace=ExecutionTrace())
        with pytest.raises(ValueError, match="trace"):
            MegaWindowEngine().simulate(ExpBackonBackoff(), 20, seed=0, trace=ExecutionTrace())


class TestEligibilityAndFuseKeys:
    def test_supports_matrix(self):
        assert MegaFairEngine.supports(OneFailAdaptive())
        assert MegaFairEngine.supports(build_protocol("log-fails-adaptive(xi_t=0.5)", k=16))
        # Slotted ALOHA keeps BatchFairEngine's geometric silence skipping.
        assert not MegaFairEngine.supports(SlottedAloha(k=16))
        assert not MegaFairEngine.supports(ExpBackonBackoff())
        for spec in FUSED_WINDOW_SPECS:
            assert MegaWindowEngine.supports(build_protocol(spec, k=16))
        assert not MegaWindowEngine.supports(OneFailAdaptive())

    def test_fair_fuse_key_is_the_protocol_class(self):
        xt2 = build_protocol("log-fails-adaptive(xi_t=0.5)", k=16)
        xt10 = build_protocol("log-fails-adaptive(xi_t=0.1)", k=16)
        assert MegaFairEngine.fuse_key(xt2) == MegaFairEngine.fuse_key(xt10)
        assert MegaFairEngine.fuse_key(xt2) != MegaFairEngine.fuse_key(OneFailAdaptive())

    def test_window_fuse_key_separates_schedules(self):
        assert MegaWindowEngine.fuse_key(ExpBackonBackoff()) == MegaWindowEngine.fuse_key(
            ExpBackonBackoff()
        )
        assert MegaWindowEngine.fuse_key(ExpBackonBackoff()) != MegaWindowEngine.fuse_key(
            build_protocol("exponential-backoff", k=16)
        )

    def test_mixed_fair_classes_rejected(self):
        cells = [
            _fused_cell("one-fail-adaptive", 20, [1, 2]),
            _fused_cell("log-fails-adaptive(xi_t=0.5)", 20, [3, 4]),
        ]
        with pytest.raises(ValueError, match="one protocol class"):
            MegaFairEngine().simulate_fused(cells)

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError, match="at least one cell"):
            MegaFairEngine().simulate_fused([])
        with pytest.raises(ValueError, match="at least one seed"):
            _fused_cell("one-fail-adaptive", 20, [])

    def test_ineligible_protocol_rejected(self):
        with pytest.raises(ValueError, match="fused kernel"):
            MegaFairEngine().simulate_fused([_fused_cell("slotted-aloha", 20, [1, 2])])

    def test_fused_engine_for_routing(self):
        assert fused_engine_for(OneFailAdaptive()) == "mega"
        assert fused_engine_for(ExpBackonBackoff()) == "mega-window"
        assert fused_engine_for(SlottedAloha(k=16)) is None
        assert fused_engine_for(OneFailAdaptive(), engine="mega") == "mega"
        assert fused_engine_for(OneFailAdaptive(), engine="batch") is None
        assert fused_engine_for(OneFailAdaptive(), engine="fair") is None
        assert (
            fused_engine_for(OneFailAdaptive(), arrivals=PoissonArrival(k=10, rate=0.5))
            is None
        )


class TestSimulateMegabatchFrontDoor:
    def test_front_door_auto_routes(self):
        cells = [
            _fused_cell("one-fail-adaptive", 30, derive_seeds(1, 2)),
            _fused_cell("one-fail-adaptive", 60, derive_seeds(2, 2)),
        ]
        results = simulate_megabatch(cells)
        assert len(results) == len(cells)
        assert all(result.engine == "mega" for group in results for result in group)

    def test_front_door_rejects_non_fusing_engine(self):
        cells = [_fused_cell("one-fail-adaptive", 30, derive_seeds(1, 2))]
        with pytest.raises(ValueError, match="not a fusing engine"):
            simulate_megabatch(cells, engine="batch")

    def test_front_door_rejects_unfusable_protocol(self):
        with pytest.raises(ValueError, match="no fusing engine"):
            simulate_megabatch([_fused_cell("slotted-aloha", 30, derive_seeds(1, 2))])


class TestMixedEligibilityGrid:
    def test_sweep_routes_each_family_to_its_best_engine(self):
        specs = [
            ProtocolSpec(key="ofa", label="OFA", spec="one-fail-adaptive"),
            ProtocolSpec(key="aloha", label="ALOHA", spec="slotted-aloha"),
            ProtocolSpec(key="ebb", label="EBB", spec="exp-backon-backoff"),
        ]
        config = ExperimentConfig(k_values=[20, 40], runs=2, seed=17)
        sweep = run_sweep(specs, config)
        for k in (20, 40):
            assert {result.engine for result in sweep.cell("ofa", k).results} == {"mega"}
            assert {result.engine for result in sweep.cell("aloha", k).results} == {"batch"}
            assert {result.engine for result in sweep.cell("ebb", k).results} == {"mega-window"}

    def test_no_fuse_restores_per_cell_batching(self):
        specs = [ProtocolSpec(key="ofa", label="OFA", spec="one-fail-adaptive")]
        config = ExperimentConfig(k_values=[20], runs=2, seed=17, fuse=False)
        sweep = run_sweep(specs, config)
        assert {result.engine for result in sweep.cell("ofa", 20).results} == {"batch"}


class TestStoreScatterBackResumability:
    GRID = [
        "one-fail-adaptive k=20 reps=3 seed=5",
        "one-fail-adaptive k=45 reps=3 seed=5",
        "one-fail-adaptive k=70 reps=3 seed=5",
    ]

    def scenarios(self) -> list[Scenario]:
        return [Scenario.parse(text) for text in self.GRID]

    def test_fused_results_scatter_into_per_cell_store_records(self, tmp_path):
        stored = Session(store_dir=tmp_path).run_all(self.scenarios())
        assert all(rs.engine_used == "mega" for rs in stored)
        resumed = Session(store_dir=tmp_path).run_all(self.scenarios())
        for first, second in zip(stored, resumed):
            assert second.cached_runs == 3 and second.new_runs == 0
            assert first.makespans == second.makespans

    def test_interrupted_sweep_refuses_only_missing_cells(self, tmp_path):
        """A sweep killed mid-grid resumes bit-identically: cached cells are
        served from the store and only the missing ones enter the new fused
        group — composition independence makes the two executions equal."""
        full = self.scenarios()
        Session(store_dir=tmp_path).run_all(full[:1])  # the "killed" partial sweep
        resumed = Session(store_dir=tmp_path).run_all(full)
        assert resumed[0].cached_runs == 3 and resumed[0].new_runs == 0
        assert all(rs.cached_runs == 0 and rs.new_runs == 3 for rs in resumed[1:])
        fresh = Session().run_all(full)
        for resumed_set, fresh_set in zip(resumed, fresh):
            assert resumed_set.makespans == fresh_set.makespans
            assert [r.seed for r in resumed_set.results] == [r.seed for r in fresh_set.results]
