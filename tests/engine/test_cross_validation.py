"""Cross-engine validation: the specialised engines agree with the node-level one.

These are the most important tests of the engine layer: they confirm that the
fair-protocol and balls-in-bins reductions used for the large sweeps produce
the same makespan distribution as the exact per-node simulation of the paper's
model (up to sampling noise, which the z-score criterion accounts for).
"""

from __future__ import annotations

import pytest

from repro.core.exp_backon_backoff import ExpBackonBackoff
from repro.core.one_fail_adaptive import OneFailAdaptive
from repro.engine.fair_engine import FairEngine
from repro.engine.slot_engine import SlotEngine
from repro.engine.validation import compare_engines, makespan_samples
from repro.engine.window_engine import WindowEngine
from repro.protocols.aloha import SlottedAloha
from repro.protocols.log_fails_adaptive import LogFailsAdaptive


class TestMakespanSamples:
    def test_sample_count_and_determinism(self):
        engine = FairEngine()
        samples = makespan_samples(engine, OneFailAdaptive(), k=20, runs=8, root_seed=1)
        assert len(samples) == 8
        assert samples == makespan_samples(engine, OneFailAdaptive(), k=20, runs=8, root_seed=1)

    def test_unsolved_run_raises(self):
        engine = FairEngine(max_slots_factor=2)
        with pytest.raises(RuntimeError):
            makespan_samples(engine, LogFailsAdaptive.for_k(200), k=200, runs=2, root_seed=0)


class TestFairEngineAgainstSlotEngine:
    @pytest.mark.parametrize("k", [5, 30])
    def test_one_fail_adaptive(self, k):
        comparison = compare_engines(
            FairEngine(), SlotEngine(), OneFailAdaptive(), k=k, runs=60, root_seed=3
        )
        assert comparison.compatible, comparison.summary()

    def test_slotted_aloha(self):
        comparison = compare_engines(
            FairEngine(), SlotEngine(), SlottedAloha(k=20), k=20, runs=60, root_seed=5
        )
        assert comparison.compatible, comparison.summary()

    def test_log_fails_adaptive(self):
        comparison = compare_engines(
            FairEngine(), SlotEngine(), LogFailsAdaptive.for_k(20), k=20, runs=60, root_seed=7
        )
        assert comparison.compatible, comparison.summary()


class TestWindowEngineAgainstSlotEngine:
    @pytest.mark.parametrize("k", [5, 30])
    def test_exp_backon_backoff(self, k):
        comparison = compare_engines(
            WindowEngine(), SlotEngine(), ExpBackonBackoff(), k=k, runs=60, root_seed=11
        )
        assert comparison.compatible, comparison.summary()


class TestComparisonMechanics:
    def test_identical_engines_always_compatible(self):
        comparison = compare_engines(
            FairEngine(), FairEngine(), OneFailAdaptive(), k=15, runs=30, root_seed=13
        )
        assert comparison.compatible

    def test_divergent_distributions_detected(self):
        """A protocol with a different delta has a visibly different makespan mean."""
        fast = OneFailAdaptive(delta=2.72)
        slow = OneFailAdaptive(delta=2.99)

        class MislabelledEngine(FairEngine):
            """Engine that silently swaps the protocol — simulates an engine bug."""

            def simulate(self, protocol, k, **kwargs):
                return super().simulate(slow, k, **kwargs)

        comparison = compare_engines(
            MislabelledEngine(), FairEngine(), fast, k=400, runs=40, root_seed=17, z_threshold=3.0
        )
        assert comparison.mean_a > comparison.mean_b

    def test_summary_mentions_protocol(self):
        comparison = compare_engines(
            FairEngine(), FairEngine(), OneFailAdaptive(), k=10, runs=10, root_seed=19
        )
        assert "one-fail-adaptive" in comparison.summary()
