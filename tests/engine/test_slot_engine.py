"""Tests for the node-level slot engine adapter."""

from __future__ import annotations

import pytest

from repro.channel.arrivals import PoissonArrival
from repro.channel.model import ChannelModel, FeedbackModel
from repro.channel.trace import ExecutionTrace
from repro.core.exp_backon_backoff import ExpBackonBackoff
from repro.core.one_fail_adaptive import OneFailAdaptive
from repro.engine.slot_engine import SlotEngine
from repro.protocols.splitting import BinarySplitting


class TestBasicOperation:
    @pytest.mark.parametrize("k", [1, 3, 12])
    def test_solves_any_protocol_class(self, k, slot_engine):
        for protocol in (OneFailAdaptive(), ExpBackonBackoff()):
            result = slot_engine.simulate(protocol, k, seed=1)
            assert result.solved
            assert result.successes == k

    def test_engine_name(self, slot_engine):
        assert slot_engine.simulate(OneFailAdaptive(), 3, seed=0).engine == "slot"

    def test_metadata_reports_arrivals(self, slot_engine):
        result = slot_engine.simulate(OneFailAdaptive(), 3, seed=0)
        assert result.metadata["arrivals"] == "BatchArrival"

    def test_deterministic(self, slot_engine):
        a = slot_engine.simulate(OneFailAdaptive(), 15, seed=4)
        b = slot_engine.simulate(OneFailAdaptive(), 15, seed=4)
        assert a.makespan == b.makespan

    def test_trace_forwarded(self, slot_engine):
        trace = ExecutionTrace()
        result = slot_engine.simulate(OneFailAdaptive(), 5, seed=2, trace=trace)
        assert len(trace) == result.slots_simulated

    def test_unsolved_when_capped(self, slot_engine):
        result = slot_engine.simulate(OneFailAdaptive(), 30, seed=0, max_slots=5)
        assert not result.solved

    def test_invalid_k(self, slot_engine):
        with pytest.raises(ValueError):
            slot_engine.simulate(OneFailAdaptive(), 0, seed=0)


class TestCustomArrivalsAndChannels:
    def test_explicit_arrival_process(self, slot_engine):
        arrivals = PoissonArrival(k=8, rate=0.2)
        result = slot_engine.simulate(OneFailAdaptive(), 8, seed=1, arrivals=arrivals)
        assert result.solved
        assert result.k == 8

    def test_collision_detection_channel(self):
        engine = SlotEngine(channel=ChannelModel(feedback=FeedbackModel.COLLISION_DETECTION))
        result = engine.simulate(BinarySplitting(), 10, seed=1)
        assert result.solved
        assert result.successes == 10

    def test_max_slots_factor_validation(self):
        with pytest.raises(ValueError):
            SlotEngine(max_slots_factor=0)
