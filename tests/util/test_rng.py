"""Tests for repro.util.rng: determinism and independence of derived streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util.rng import RandomSource, derive_seeds, make_generator, spawn_generators


class TestDeriveSeeds:
    def test_deterministic(self):
        assert derive_seeds(42, 5) == derive_seeds(42, 5)

    def test_different_roots_differ(self):
        assert derive_seeds(1, 5) != derive_seeds(2, 5)

    def test_count_respected(self):
        assert len(derive_seeds(0, 17)) == 17

    def test_zero_count(self):
        assert derive_seeds(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            derive_seeds(0, -1)

    def test_seeds_are_distinct(self):
        seeds = derive_seeds(7, 100)
        assert len(set(seeds)) == 100

    def test_seeds_fit_in_int64(self):
        for seed in derive_seeds(3, 50):
            assert 0 <= seed < 2**63


class TestMakeGenerator:
    def test_same_seed_same_stream(self):
        a = make_generator(9).random(10)
        b = make_generator(9).random(10)
        assert np.array_equal(a, b)

    def test_different_seed_different_stream(self):
        a = make_generator(9).random(10)
        b = make_generator(10).random(10)
        assert not np.array_equal(a, b)


class TestSpawnGenerators:
    def test_count(self):
        assert len(spawn_generators(5, 4)) == 4

    def test_children_are_independent(self):
        children = spawn_generators(5, 2)
        a = children[0].random(100)
        b = children[1].random(100)
        assert not np.array_equal(a, b)

    def test_reproducible(self):
        first = [g.random() for g in spawn_generators(11, 3)]
        second = [g.random() for g in spawn_generators(11, 3)]
        assert first == second


class TestRandomSource:
    def test_same_seed_reproduces(self):
        assert RandomSource(seed=3).random() == RandomSource(seed=3).random()

    def test_split_children_differ_from_parent_and_each_other(self):
        source = RandomSource(seed=3)
        a, b = source.split(2)
        values = {float(source.random()), float(a.random()), float(b.random())}
        assert len(values) == 3

    def test_child_matches_split(self):
        via_split = RandomSource(seed=8).split(3)[2].random()
        via_child = RandomSource(seed=8).child(2).random()
        assert via_split == via_child

    def test_lineage_recorded(self):
        child = RandomSource(seed=8).child(4).child(1)
        assert child.lineage == (4, 1)

    def test_negative_child_index_rejected(self):
        with pytest.raises(ValueError):
            RandomSource(seed=8).child(-1)

    def test_negative_split_rejected(self):
        with pytest.raises(ValueError):
            RandomSource(seed=8).split(-2)

    def test_integers_in_range(self):
        source = RandomSource(seed=1)
        values = source.integers(0, 10, size=100)
        assert (values >= 0).all() and (values < 10).all()
