"""Tests for the table formatters."""

from __future__ import annotations

import pytest

from repro.util.tables import format_markdown_table, format_text_table


class TestMarkdownTable:
    def test_basic_structure(self):
        table = format_markdown_table(["a", "b"], [[1, 2], [3, 4]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("| a")
        assert set(lines[1]) <= {"|", "-"}

    def test_float_formatting(self):
        table = format_markdown_table(["x"], [[3.14159]], float_format=".2f")
        assert "3.14" in table
        assert "3.14159" not in table

    def test_integer_not_float_formatted(self):
        table = format_markdown_table(["x"], [[10]])
        assert "| 10" in table

    def test_column_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_markdown_table(["a", "b"], [[1]])

    def test_cells_aligned(self):
        table = format_markdown_table(["name", "v"], [["long-name", 1], ["x", 22]])
        lines = table.splitlines()
        assert len(lines[0]) == len(lines[2]) == len(lines[3])

    def test_empty_rows_ok(self):
        table = format_markdown_table(["a"], [])
        assert table.count("\n") == 1


class TestTextTable:
    def test_basic_structure(self):
        table = format_text_table(["a", "bb"], [[1, 2]])
        lines = table.splitlines()
        assert len(lines) == 3
        assert "a" in lines[0] and "bb" in lines[0]

    def test_no_pipes(self):
        table = format_text_table(["a"], [[1]])
        assert "|" not in table

    def test_column_gap(self):
        table = format_text_table(["a", "b"], [[1, 2]], column_gap=4)
        assert "a    b" in table.splitlines()[0]

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_text_table(["a"], [[1, 2]])

    def test_float_format_applied(self):
        table = format_text_table(["x"], [[0.123456]], float_format=".3f")
        assert "0.123" in table
