"""Tests for the ASCII log-log plot renderer."""

from __future__ import annotations

import pytest

from repro.util.textplot import LogLogPlot, render_series


class TestLogLogPlot:
    def test_render_contains_markers_and_legend(self):
        plot = LogLogPlot(width=40, height=10, x_label="k", y_label="steps")
        plot.add_series("ofa", [10, 100, 1000], [74, 740, 7400])
        text = plot.render()
        assert "o" in text
        assert "legend:" in text
        assert "ofa" in text

    def test_two_series_use_distinct_markers(self):
        plot = LogLogPlot(width=40, height=10)
        plot.add_series("first", [1, 10], [1, 10])
        plot.add_series("second", [1, 10], [2, 20])
        text = plot.render()
        assert "o = first" in text
        assert "x = second" in text

    def test_empty_plot_rejected(self):
        with pytest.raises(ValueError):
            LogLogPlot().render()

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            LogLogPlot().add_series("empty", [], [])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            LogLogPlot().add_series("bad", [1, 2], [1])

    def test_non_positive_values_rejected(self):
        with pytest.raises(ValueError):
            LogLogPlot().add_series("bad", [0, 1], [1, 2])
        with pytest.raises(ValueError):
            LogLogPlot().add_series("bad", [1, 2], [1, -3])

    def test_grid_dimensions(self):
        plot = LogLogPlot(width=30, height=8)
        plot.add_series("s", [1, 100], [1, 100])
        lines = plot.render().splitlines()
        # height grid rows + axis row + 2 caption rows + legend header + 1 entry
        assert len(lines) == 8 + 1 + 2 + 1 + 1

    def test_single_point_series(self):
        plot = LogLogPlot(width=20, height=5)
        plot.add_series("point", [5], [50])
        assert "o" in plot.render()


class TestRenderSeries:
    def test_wrapper_equivalent(self):
        text = render_series({"a": ([1, 10], [2, 20])}, width=20, height=5)
        assert "a" in text and "o" in text

    def test_axis_labels_present(self):
        text = render_series({"a": ([1, 10], [2, 20])}, x_label="nodes", y_label="slots")
        assert "nodes" in text and "slots" in text
