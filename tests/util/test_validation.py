"""Tests for the parameter-validation helpers."""

from __future__ import annotations

import math

import pytest

from repro.util.validation import (
    check_in_range,
    check_positive,
    check_positive_int,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 2.5) == 2.5

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ValueError):
            check_positive("x", 0)
        with pytest.raises(ValueError):
            check_positive("x", -1)

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValueError):
            check_positive("x", math.nan)
        with pytest.raises(ValueError):
            check_positive("x", math.inf)

    def test_returns_float(self):
        assert isinstance(check_positive("x", 3), float)


class TestCheckPositiveInt:
    def test_accepts_positive_int(self):
        assert check_positive_int("k", 7) == 7

    def test_rejects_zero_negative(self):
        with pytest.raises(ValueError):
            check_positive_int("k", 0)
        with pytest.raises(ValueError):
            check_positive_int("k", -3)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int("k", True)

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int("k", 3.0)


class TestCheckProbability:
    def test_accepts_interior_and_one(self):
        assert check_probability("p", 0.5) == 0.5
        assert check_probability("p", 1.0) == 1.0

    def test_zero_rejected_by_default(self):
        with pytest.raises(ValueError):
            check_probability("p", 0.0)

    def test_zero_allowed_when_requested(self):
        assert check_probability("p", 0.0, allow_zero=True) == 0.0

    def test_above_one_rejected(self):
        with pytest.raises(ValueError):
            check_probability("p", 1.0001)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            check_probability("p", math.nan)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range("d", 1.0, 1.0, 2.0) == 1.0
        assert check_in_range("d", 2.0, 1.0, 2.0) == 2.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValueError):
            check_in_range("d", 1.0, 1.0, 2.0, low_inclusive=False)
        with pytest.raises(ValueError):
            check_in_range("d", 2.0, 1.0, 2.0, high_inclusive=False)

    def test_outside_rejected(self):
        with pytest.raises(ValueError):
            check_in_range("d", 2.5, 1.0, 2.0)

    def test_error_message_mentions_name(self):
        with pytest.raises(ValueError, match="delta"):
            check_in_range("delta", 5.0, 0.0, 1.0)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            check_in_range("d", math.nan, 0.0, 1.0)
