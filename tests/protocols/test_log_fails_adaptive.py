"""Tests for the Log-fails Adaptive reconstruction."""

from __future__ import annotations

import math

import pytest

from repro.channel.model import Observation
from repro.protocols.log_fails_adaptive import LogFailsAdaptive


def reception(slot: int) -> Observation:
    return Observation(slot=slot, transmitted=False, received=True, delivered=False)


def noise(slot: int) -> Observation:
    return Observation(slot=slot, transmitted=False, received=False, delivered=False)


class TestConstruction:
    def test_for_k_uses_papers_epsilon(self):
        protocol = LogFailsAdaptive.for_k(999)
        assert protocol.epsilon == pytest.approx(1.0 / 1000)

    def test_epsilon_range_enforced(self):
        with pytest.raises(ValueError):
            LogFailsAdaptive(epsilon=0.0)
        with pytest.raises(ValueError):
            LogFailsAdaptive(epsilon=1.0)

    def test_xi_t_range_enforced(self):
        with pytest.raises(ValueError):
            LogFailsAdaptive(epsilon=0.01, xi_t=0.0)
        with pytest.raises(ValueError):
            LogFailsAdaptive(epsilon=0.01, xi_t=1.0)

    def test_for_k_rejects_non_positive_k(self):
        with pytest.raises(ValueError):
            LogFailsAdaptive.for_k(0)

    def test_declares_epsilon_knowledge(self):
        assert "epsilon" in LogFailsAdaptive.requires_knowledge


class TestSchedule:
    def test_xi_t_half_matches_even_steps(self):
        protocol = LogFailsAdaptive.for_k(100, xi_t=0.5)
        parities = [protocol.is_bt_step(slot) for slot in range(8)]
        assert parities == [False, True, False, True, False, True, False, True]

    def test_xi_t_tenth_means_one_in_ten(self):
        protocol = LogFailsAdaptive.for_k(100, xi_t=0.1)
        bt_steps = sum(protocol.is_bt_step(slot) for slot in range(1_000))
        assert bt_steps == 100

    def test_bt_fraction_matches_xi_t_generally(self):
        for xi_t in (0.2, 0.3, 0.7):
            protocol = LogFailsAdaptive(epsilon=0.01, xi_t=xi_t)
            fraction = sum(protocol.is_bt_step(slot) for slot in range(10_000)) / 10_000
            assert fraction == pytest.approx(xi_t, abs=0.001)


class TestProbabilities:
    def test_bt_probability_formula(self):
        protocol = LogFailsAdaptive.for_k(1_023)  # epsilon = 1/1024
        assert protocol.bt_probability == pytest.approx(1.0 / (1.0 + 10.0))

    def test_bt_step_uses_fixed_probability(self):
        protocol = LogFailsAdaptive.for_k(100, xi_t=0.5)
        bt_before = protocol.transmission_probability(1)
        for slot in range(50):
            protocol.notify(reception(slot))
        assert protocol.transmission_probability(1) == pytest.approx(bt_before)

    def test_at_step_uses_inverse_estimator(self):
        protocol = LogFailsAdaptive.for_k(100)
        assert protocol.transmission_probability(0) == pytest.approx(
            min(1.0, 1.0 / protocol.density_estimate)
        )

    def test_probabilities_valid_over_long_run(self):
        protocol = LogFailsAdaptive.for_k(100)
        for slot in range(500):
            p = protocol.transmission_probability(slot)
            assert 0.0 < p <= 1.0
            protocol.notify(noise(slot) if slot % 5 else reception(slot))


class TestEstimatorDynamics:
    def test_initial_estimate_is_one(self):
        assert LogFailsAdaptive.for_k(100).density_estimate == 1.0

    def test_failure_threshold_is_logarithmic(self):
        protocol = LogFailsAdaptive.for_k(1_023, xi_beta=0.1)
        expected = math.ceil((1.0 + 10.0) * 1.1)
        assert protocol.failure_threshold == expected

    def test_no_update_before_threshold(self):
        protocol = LogFailsAdaptive.for_k(100)
        threshold = protocol.failure_threshold
        for slot in range(threshold - 1):
            protocol.notify(noise(slot))
        assert protocol.density_estimate == 1.0

    def test_first_correction_doubles(self):
        protocol = LogFailsAdaptive.for_k(100)
        for slot in range(protocol.failure_threshold):
            protocol.notify(noise(slot))
        assert protocol.density_estimate == pytest.approx(2.0)

    def test_alternating_search_explores_both_directions(self):
        protocol = LogFailsAdaptive.for_k(100)
        threshold = protocol.failure_threshold
        estimates = []
        for block in range(4):
            for slot in range(block * threshold, (block + 1) * threshold):
                protocol.notify(noise(slot))
            estimates.append(protocol.density_estimate)
        # Anchor is 1.0: the search visits 2, max(1/2 -> 1), 4, 1 (floored).
        assert estimates[0] == pytest.approx(2.0)
        assert estimates[1] == pytest.approx(1.0)
        assert estimates[2] == pytest.approx(4.0)
        assert estimates[3] == pytest.approx(1.0)

    def test_reception_decrements_and_resets_search(self):
        protocol = LogFailsAdaptive.for_k(100)
        for slot in range(protocol.failure_threshold):
            protocol.notify(noise(slot))
        assert protocol.search_index == 1
        before = protocol.density_estimate
        protocol.notify(reception(1_000))
        assert protocol.search_index == 0
        assert protocol.failure_streak == 0
        assert protocol.density_estimate == pytest.approx(max(before - 1.1, 1.0))

    def test_estimate_never_below_one(self):
        protocol = LogFailsAdaptive.for_k(100)
        for slot in range(200):
            protocol.notify(reception(slot))
        assert protocol.density_estimate >= 1.0

    def test_own_delivery_leaves_state_unchanged(self):
        protocol = LogFailsAdaptive.for_k(100)
        protocol.notify(noise(0))
        streak = protocol.failure_streak
        protocol.notify(Observation(slot=1, transmitted=True, received=False, delivered=True))
        assert protocol.failure_streak == streak

    def test_search_exponent_bounded_and_wraps(self):
        """The coarse correction never explores beyond ~2/epsilon and never overflows."""
        protocol = LogFailsAdaptive.for_k(100)
        threshold = protocol.failure_threshold
        cap = 2.0 ** protocol.max_search_exponent
        slot = 0
        estimates = []
        # Far more silent blocks than the sweep length: the search must wrap.
        for _ in range(10 * protocol.max_search_exponent):
            for _ in range(threshold):
                protocol.notify(noise(slot))
                slot += 1
            estimates.append(protocol.density_estimate)
        assert max(estimates) <= cap
        assert min(estimates) >= 1.0
        # After wrapping, small exploration values appear again late in the run.
        late = estimates[len(estimates) // 2 :]
        assert min(late) <= 4.0

    def test_max_search_exponent_formula(self):
        protocol = LogFailsAdaptive.for_k(1_023)  # epsilon = 1/1024
        assert protocol.max_search_exponent == 11

    def test_ramp_up_reaches_large_values_geometrically(self):
        """The search ramps the estimate to ~k within O(log k) corrections."""
        protocol = LogFailsAdaptive.for_k(10_000)
        threshold = protocol.failure_threshold
        corrections = 0
        slot = 0
        while protocol.density_estimate < 5_000:
            for _ in range(threshold):
                protocol.notify(noise(slot))
                slot += 1
            corrections += 1
            assert corrections < 60, "estimator failed to ramp up geometrically"
        # Odd search indices go up by 2, 4, 8, ...: reaching 2^13 needs ~2*13 blocks.
        assert corrections <= 2 * math.ceil(math.log2(5_000)) + 2
