"""Tests for the slotted-ALOHA yardstick protocol."""

from __future__ import annotations

import pytest

from repro.channel.model import Observation
from repro.engine.fair_engine import FairEngine
from repro.protocols.aloha import SlottedAloha
from repro.util.rng import derive_seeds


def reception(slot: int) -> Observation:
    return Observation(slot=slot, transmitted=False, received=True, delivered=False)


class TestSlottedAloha:
    def test_requires_k(self):
        assert "k" in SlottedAloha.requires_knowledge

    def test_initial_probability(self):
        assert SlottedAloha(k=50).transmission_probability(0) == pytest.approx(1 / 50)

    def test_probability_tracks_deliveries(self):
        protocol = SlottedAloha(k=10)
        for slot in range(4):
            protocol.notify(reception(slot))
        assert protocol.remaining_estimate == 6
        assert protocol.transmission_probability(4) == pytest.approx(1 / 6)

    def test_static_variant_ignores_deliveries(self):
        protocol = SlottedAloha(k=10, track_deliveries=False)
        for slot in range(4):
            protocol.notify(reception(slot))
        assert protocol.transmission_probability(4) == pytest.approx(1 / 10)

    def test_estimate_never_below_one(self):
        protocol = SlottedAloha(k=3)
        for slot in range(10):
            protocol.notify(reception(slot))
        assert protocol.remaining_estimate == 1
        assert protocol.transmission_probability(10) == 1.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            SlottedAloha(k=0)

    def test_reset_restores_k(self):
        protocol = SlottedAloha(k=5)
        protocol.notify(reception(0))
        protocol.reset()
        assert protocol.remaining_estimate == 5


class TestAlohaIsTheFairOptimum:
    def test_ratio_close_to_e(self):
        """The genie-aided ALOHA achieves the e steps/node optimum of Section 5."""
        engine = FairEngine()
        k = 3_000
        ratios = []
        for seed in derive_seeds(5, 5):
            result = engine.simulate(SlottedAloha(k=k), k, seed=seed)
            assert result.solved
            ratios.append(result.steps_per_node)
        mean_ratio = sum(ratios) / len(ratios)
        assert 2.45 < mean_ratio < 3.0  # e = 2.718...
