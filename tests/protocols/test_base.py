"""Tests for the protocol interfaces and registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.model import Observation
from repro.protocols.base import (
    FairProtocol,
    WindowedProtocol,
    available_protocols,
    get_protocol_class,
    register_protocol,
)
from repro.core.exp_backon_backoff import ExpBackonBackoff
from repro.core.one_fail_adaptive import OneFailAdaptive
from repro.protocols.log_fails_adaptive import LogFailsAdaptive


class TestRegistry:
    def test_paper_protocols_registered(self):
        names = available_protocols()
        assert "one-fail-adaptive" in names
        assert "exp-backon-backoff" in names
        assert "log-fails-adaptive" in names
        assert "loglog-iterated-backoff" in names

    def test_lookup_returns_class(self):
        assert get_protocol_class("one-fail-adaptive") is OneFailAdaptive
        assert get_protocol_class("exp-backon-backoff") is ExpBackonBackoff

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown protocol"):
            get_protocol_class("does-not-exist")

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError):

            @register_protocol
            class Duplicate(OneFailAdaptive):  # same 'name' attribute, different class
                pass

    def test_default_name_rejected(self):
        with pytest.raises(ValueError):

            @register_protocol
            class Unnamed(FairProtocol):
                def transmission_probability(self, slot):
                    return 0.5

                def reset(self):
                    pass

                def notify(self, observation):
                    pass


class TestSpawn:
    def test_spawn_is_independent_copy(self):
        prototype = OneFailAdaptive()
        prototype.notify(Observation(slot=0, transmitted=False, received=True, delivered=False))
        clone = prototype.spawn()
        assert clone is not prototype
        assert clone.messages_received == 0  # reset
        assert clone.delta == prototype.delta  # parameters preserved

    def test_spawn_preserves_parameters(self):
        clone = LogFailsAdaptive.for_k(500, xi_t=0.1).spawn()
        assert clone.xi_t == 0.1
        assert clone.epsilon == pytest.approx(1.0 / 501)


class TestDescribe:
    def test_describe_reports_parameters(self):
        described = OneFailAdaptive(delta=2.8).describe()
        assert described["name"] == "one-fail-adaptive"
        assert described["parameters"]["delta"] == 2.8

    def test_describe_hides_internal_state(self):
        protocol = OneFailAdaptive()
        assert not any(key.startswith("_") for key in protocol.describe()["parameters"])

    def test_repr_mentions_class(self):
        assert "OneFailAdaptive" in repr(OneFailAdaptive())


class TestFairProtocolWillTransmit:
    def test_probability_one_always_transmits(self):
        class AlwaysOn(FairProtocol):
            name = "test-always-on"
            def reset(self):
                pass
            def transmission_probability(self, slot):
                return 1.0
            def notify(self, observation):
                pass

        protocol = AlwaysOn()
        rng = np.random.default_rng(0)
        assert all(protocol.will_transmit(slot, rng) for slot in range(20))

    def test_empirical_rate_matches_probability(self):
        protocol = OneFailAdaptive()
        rng = np.random.default_rng(1)
        # Keep the state frozen by never notifying; slot 0 is an AT step with
        # probability 1/(delta + 1).
        probability = protocol.transmission_probability(0)
        hits = sum(protocol.will_transmit(0, rng) for _ in range(20_000))
        assert hits / 20_000 == pytest.approx(probability, abs=0.02)


class TestWindowedProtocolBehaviour:
    def test_transmits_exactly_once_per_window(self):
        protocol = ExpBackonBackoff()
        protocol.reset()
        rng = np.random.default_rng(2)
        lengths = []
        schedule = protocol.window_lengths()
        for _ in range(6):
            lengths.append(next(schedule))
        total = sum(lengths)
        fresh = protocol.spawn()
        transmissions = [fresh.will_transmit(slot, rng) for slot in range(total)]
        start = 0
        for length in lengths:
            assert sum(transmissions[start : start + length]) == 1
            start += length

    def test_chosen_slot_uniform_over_window(self):
        protocol = ExpBackonBackoff()
        counts = np.zeros(2, dtype=int)
        for seed in range(400):
            fresh = protocol.spawn()
            rng = np.random.default_rng(seed)
            for slot in range(2):  # first window of Algorithm 2 has length 2
                if fresh.will_transmit(slot, rng):
                    counts[slot] += 1
        assert counts.sum() == 400
        assert counts.min() > 120  # roughly uniform

    def test_invalid_window_length_rejected(self):
        class BadWindows(WindowedProtocol):
            name = "test-bad-windows"
            def window_lengths(self):
                yield 0

        protocol = BadWindows()
        protocol.reset()
        with pytest.raises(ValueError):
            protocol.will_transmit(0, np.random.default_rng(0))
