"""Tests for Exp Back-on/Back-off (Algorithm 2) — window-schedule fidelity."""

from __future__ import annotations

import itertools
import math

import pytest

from repro.core.constants import EBB_DELTA_DEFAULT, EBB_DELTA_MAX
from repro.core.exp_backon_backoff import ExpBackonBackoff


def first_windows(protocol: ExpBackonBackoff, count: int) -> list[int]:
    return list(itertools.islice(protocol.window_lengths(), count))


class TestParameterValidation:
    def test_default_is_papers_delta(self):
        assert ExpBackonBackoff().delta == pytest.approx(EBB_DELTA_DEFAULT)

    def test_delta_must_be_below_inverse_e(self):
        with pytest.raises(ValueError):
            ExpBackonBackoff(delta=EBB_DELTA_MAX)
        with pytest.raises(ValueError):
            ExpBackonBackoff(delta=0.5)

    def test_delta_must_be_positive(self):
        with pytest.raises(ValueError):
            ExpBackonBackoff(delta=0.0)

    def test_range_enforcement_can_be_disabled(self):
        assert ExpBackonBackoff(delta=0.5, enforce_theorem_range=False).delta == 0.5

    def test_max_phase_validated(self):
        with pytest.raises(ValueError):
            ExpBackonBackoff(max_phase=0)

    def test_requires_no_knowledge(self):
        assert ExpBackonBackoff.requires_knowledge == frozenset()


class TestWindowSchedule:
    def test_phase_one_starts_at_two(self):
        assert first_windows(ExpBackonBackoff(), 1)[0] == 2

    def test_schedule_prefix_matches_algorithm2(self):
        """Recompute the schedule independently and compare a long prefix."""
        delta = EBB_DELTA_DEFAULT
        expected = []
        for phase in range(1, 8):
            w = float(2**phase)
            while w >= 1.0:
                expected.append(int(math.ceil(w)))
                w *= 1.0 - delta
        assert first_windows(ExpBackonBackoff(), len(expected)) == expected

    def test_every_phase_restarts_at_power_of_two(self):
        protocol = ExpBackonBackoff()
        windows = first_windows(protocol, 200)
        # Locate phase starts: a window strictly larger than its predecessor.
        starts = [windows[0]] + [b for a, b in zip(windows, windows[1:]) if b > a]
        for phase, start in enumerate(starts, start=1):
            assert start == 2**phase

    def test_windows_within_phase_decrease(self):
        protocol = ExpBackonBackoff(delta=0.3)
        windows = first_windows(protocol, 50)
        for a, b in zip(windows, windows[1:]):
            if b <= a:  # inside a phase
                assert b >= math.floor(a * (1 - 0.3))

    def test_windows_never_below_one(self):
        assert all(w >= 1 for w in first_windows(ExpBackonBackoff(), 500))

    def test_rounds_in_phase_matches_iteration(self):
        protocol = ExpBackonBackoff()
        windows = first_windows(protocol, 1_000)
        # Count consecutive non-increasing runs per phase for the first phases.
        phase = 1
        index = 0
        while phase <= 6:
            expected_rounds = protocol.rounds_in_phase(phase)
            run = windows[index : index + expected_rounds]
            assert run[0] == 2**phase
            if expected_rounds > 1:
                assert all(a >= b for a, b in zip(run, run[1:]))
            index += expected_rounds
            phase += 1

    def test_rounds_in_phase_formula_lower_bound(self):
        protocol = ExpBackonBackoff()
        for phase in (1, 3, 6, 10):
            # w = 2^phase (1-delta)^j >= 1 has about phase/log2(1/(1-delta)) solutions.
            approx = phase / math.log2(1.0 / (1.0 - protocol.delta)) + 1
            assert abs(protocol.rounds_in_phase(phase) - approx) <= 1.5

    def test_phase_of_window(self):
        protocol = ExpBackonBackoff()
        rounds_one = protocol.rounds_in_phase(1)
        assert protocol.phase_of_window(0) == 1
        assert protocol.phase_of_window(rounds_one - 1) == 1
        assert protocol.phase_of_window(rounds_one) == 2

    def test_phase_of_window_validates_input(self):
        with pytest.raises(ValueError):
            ExpBackonBackoff().phase_of_window(-1)

    def test_rounds_in_phase_validates_input(self):
        with pytest.raises(ValueError):
            ExpBackonBackoff().rounds_in_phase(0)

    def test_schedule_is_finite_safety_net(self):
        protocol = ExpBackonBackoff(max_phase=3)
        windows = list(protocol.window_lengths())
        assert windows[0] == 2
        assert max(windows) == 8

    def test_total_slots_up_to_phase_matches_theorem_telescoping(self):
        """The telescoped total of Theorem 2 upper-bounds the schedule length."""
        protocol = ExpBackonBackoff()
        target_phase = 10
        total = 0
        schedule = protocol.window_lengths()
        for window_index in itertools.count():
            if protocol.phase_of_window(window_index) > target_phase:
                break
            total += next(schedule)
        # Sum of phases 1..p of 2^i * sum_j (1-delta)^j <= 2^(p+1) / delta, plus
        # rounding slack of one slot per window.
        bound = 2 ** (target_phase + 1) / protocol.delta + 3 * protocol.rounds_in_phase(
            target_phase
        ) * target_phase
        assert total <= bound


class TestDeltaInfluence:
    def test_smaller_delta_means_more_rounds_per_phase(self):
        gentle = ExpBackonBackoff(delta=0.05)
        aggressive = ExpBackonBackoff(delta=0.35)
        assert gentle.rounds_in_phase(8) > aggressive.rounds_in_phase(8)

    def test_analysis_constant_decreases_with_delta(self):
        from repro.core.analysis import ebb_leading_constant

        assert ebb_leading_constant(0.1) > ebb_leading_constant(0.3)
