"""Tests for the monotone windowed back-off family (Bender et al.)."""

from __future__ import annotations

import itertools
import math

import pytest

from repro.protocols.backoff import (
    ExponentialBackoff,
    LogBackoff,
    LogLogIteratedBackoff,
    PolynomialBackoff,
    WindowBackoffProtocol,
)


def first_windows(protocol, count: int) -> list[int]:
    return list(itertools.islice(protocol.window_lengths(), count))


class TestExponentialBackoff:
    def test_binary_schedule(self):
        assert first_windows(ExponentialBackoff(r=2), 5) == [2, 4, 8, 16, 32]

    def test_general_base(self):
        windows = first_windows(ExponentialBackoff(r=3), 4)
        assert windows == [3, 9, 27, 81]

    def test_base_must_exceed_one(self):
        with pytest.raises(ValueError):
            ExponentialBackoff(r=1.0)
        with pytest.raises(ValueError):
            ExponentialBackoff(r=0.5)


class TestPolynomialBackoff:
    def test_quadratic_schedule(self):
        assert first_windows(PolynomialBackoff(r=2), 5) == [1, 4, 9, 16, 25]

    def test_non_integer_exponent(self):
        windows = first_windows(PolynomialBackoff(r=1.5), 4)
        assert windows == [1, math.ceil(2**1.5), math.ceil(3**1.5), 8]

    def test_exponent_must_exceed_one(self):
        with pytest.raises(ValueError):
            PolynomialBackoff(r=1.0)


class TestLogBackoff:
    def test_growth_factor(self):
        protocol = LogBackoff(r=8.0)
        windows = first_windows(protocol, 3)
        assert windows[0] == 8
        # next size = 8 * (1 + 1/log2(8)) = 8 * 4/3
        assert windows[1] == math.ceil(8 * (1 + 1 / 3))

    def test_monotone_non_decreasing(self):
        windows = first_windows(LogBackoff(), 200)
        assert all(a <= b for a, b in zip(windows, windows[1:]))


class TestLogLogIteratedBackoff:
    def test_default_seed_is_two(self):
        assert first_windows(LogLogIteratedBackoff(), 1)[0] == 2

    def test_growth_factor_once_defined(self):
        protocol = LogLogIteratedBackoff(r=256.0)
        windows = first_windows(protocol, 2)
        # lg 256 = 8, lglg 256 = 3 -> next = 256 * (1 + 1/3)
        assert windows[1] == math.ceil(256 * (1 + 1 / 3))

    def test_small_windows_grow_by_doubling(self):
        # While lg w <= 2 the growth denominator is clamped to 1 (factor 2).
        windows = first_windows(LogLogIteratedBackoff(), 3)
        assert windows[:2] == [2, 4]

    def test_monotone_non_decreasing(self):
        windows = first_windows(LogLogIteratedBackoff(), 100)
        assert all(a <= b for a, b in zip(windows, windows[1:]))

    def test_grows_slower_than_exponential(self):
        llib = first_windows(LogLogIteratedBackoff(), 30)
        exp = first_windows(ExponentialBackoff(r=2), 30)
        assert llib[-1] < exp[-1]

    def test_grows_faster_than_log_backoff_eventually(self):
        llib = first_windows(LogLogIteratedBackoff(), 100)
        logb = first_windows(LogBackoff(), 100)
        assert llib[-1] > logb[-1]

    def test_reaches_large_sizes_in_reasonable_round_count(self):
        """Reaching window ~k takes O(lglg k * lg k) rounds (total time ~k lglg k)."""
        windows = first_windows(LogLogIteratedBackoff(), 100)
        assert max(windows) > 1e6


class TestSafetyNets:
    def test_runaway_schedule_rejected(self):
        class Runaway(WindowBackoffProtocol):
            name = "test-runaway"

            def window_sequence(self):
                yield 2.0**41

        protocol = Runaway()
        protocol.reset()
        with pytest.raises(RuntimeError):
            next(protocol.window_lengths())

    def test_shrinking_schedule_rejected(self):
        class Shrinking(WindowBackoffProtocol):
            name = "test-shrinking"

            def window_sequence(self):
                yield 10.0
                yield 5.0

        protocol = Shrinking()
        protocol.reset()
        schedule = protocol.window_lengths()
        assert next(schedule) == 10
        with pytest.raises(RuntimeError):
            next(schedule)

    def test_sub_one_window_rejected(self):
        class TooSmall(WindowBackoffProtocol):
            name = "test-too-small"

            def window_sequence(self):
                yield 0.25

        protocol = TooSmall()
        protocol.reset()
        with pytest.raises(ValueError):
            next(protocol.window_lengths())
