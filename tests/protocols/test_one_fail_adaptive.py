"""Tests for One-fail Adaptive (Algorithm 1) — line-by-line fidelity checks."""

from __future__ import annotations

import math

import pytest

from repro.channel.model import Observation
from repro.core.constants import OFA_DELTA_DEFAULT, OFA_DELTA_MAX
from repro.core.one_fail_adaptive import OneFailAdaptive


def reception(slot: int) -> Observation:
    return Observation(slot=slot, transmitted=False, received=True, delivered=False)


def noise(slot: int) -> Observation:
    return Observation(slot=slot, transmitted=False, received=False, delivered=False)


class TestParameterValidation:
    def test_default_is_papers_delta(self):
        assert OneFailAdaptive().delta == pytest.approx(2.72)

    def test_delta_must_exceed_e(self):
        with pytest.raises(ValueError):
            OneFailAdaptive(delta=math.e)

    def test_delta_upper_bound_inclusive(self):
        assert OneFailAdaptive(delta=OFA_DELTA_MAX).delta == pytest.approx(OFA_DELTA_MAX)
        with pytest.raises(ValueError):
            OneFailAdaptive(delta=OFA_DELTA_MAX + 0.01)

    def test_range_enforcement_can_be_disabled(self):
        assert OneFailAdaptive(delta=2.0, enforce_theorem_range=False).delta == 2.0

    def test_non_positive_delta_always_rejected(self):
        with pytest.raises(ValueError):
            OneFailAdaptive(delta=-1.0, enforce_theorem_range=False)

    def test_requires_no_knowledge(self):
        assert OneFailAdaptive.requires_knowledge == frozenset()


class TestInitialState:
    def test_line2_density_estimator(self):
        protocol = OneFailAdaptive()
        assert protocol.density_estimate == pytest.approx(protocol.delta + 1.0)

    def test_line3_sigma_zero(self):
        assert OneFailAdaptive().messages_received == 0

    def test_reset_restores_initial_state(self):
        protocol = OneFailAdaptive()
        protocol.notify(reception(0))
        protocol.reset()
        assert protocol.messages_received == 0
        assert protocol.density_estimate == pytest.approx(protocol.delta + 1.0)


class TestStepParity:
    def test_slot0_is_at_step(self):
        # Communication step 1 is odd, hence an AT step.
        assert not OneFailAdaptive.is_bt_step(0)

    def test_slot1_is_bt_step(self):
        assert OneFailAdaptive.is_bt_step(1)

    def test_parity_alternates(self):
        parities = [OneFailAdaptive.is_bt_step(slot) for slot in range(6)]
        assert parities == [False, True, False, True, False, True]


class TestTransmissionProbabilities:
    def test_at_step_uses_inverse_estimator(self):
        protocol = OneFailAdaptive()
        assert protocol.transmission_probability(0) == pytest.approx(1.0 / (protocol.delta + 1.0))

    def test_bt_step_initial_probability_is_one(self):
        # sigma = 0 -> 1/(1 + log2(1)) = 1.
        assert OneFailAdaptive().transmission_probability(1) == pytest.approx(1.0)

    def test_bt_step_probability_decreases_with_sigma(self):
        protocol = OneFailAdaptive()
        previous = protocol.transmission_probability(1)
        for slot in range(1, 40, 2):
            protocol.notify(reception(slot))
            current = protocol.transmission_probability(slot + 2)
            assert current <= previous
            previous = current

    def test_bt_probability_formula(self):
        protocol = OneFailAdaptive()
        for sigma, slot in enumerate(range(1, 21, 2), start=1):
            protocol.notify(reception(slot))
            expected = 1.0 / (1.0 + math.log2(sigma + 1))
            assert protocol.transmission_probability(slot + 2) == pytest.approx(expected)

    def test_probabilities_always_valid(self):
        protocol = OneFailAdaptive()
        for slot in range(200):
            p = protocol.transmission_probability(slot)
            assert 0.0 < p <= 1.0
            protocol.notify(noise(slot) if slot % 3 else reception(slot))


class TestEstimatorDynamics:
    def test_line11_increment_on_silent_at_step(self):
        protocol = OneFailAdaptive()
        initial = protocol.density_estimate
        protocol.notify(noise(0))  # AT step without reception
        assert protocol.density_estimate == pytest.approx(initial + 1.0)

    def test_no_increment_on_silent_bt_step(self):
        protocol = OneFailAdaptive()
        initial = protocol.density_estimate
        protocol.notify(noise(1))  # BT step without reception
        assert protocol.density_estimate == pytest.approx(initial)

    def test_line16_bt_reception_decrement(self):
        protocol = OneFailAdaptive()
        # First grow the estimator above the floor so the decrement is visible.
        for slot in range(0, 20, 2):
            protocol.notify(noise(slot))
        before = protocol.density_estimate
        protocol.notify(reception(21))  # BT step (slot 21 -> step 22, even)
        assert protocol.density_estimate == pytest.approx(
            max(before - protocol.delta, protocol.delta + 1.0)
        )

    def test_line18_at_reception_net_effect(self):
        protocol = OneFailAdaptive()
        for slot in range(0, 20, 2):
            protocol.notify(noise(slot))
        before = protocol.density_estimate
        protocol.notify(reception(20))  # AT step: +1 then -(delta+1)
        assert protocol.density_estimate == pytest.approx(
            max(before + 1.0 - protocol.delta - 1.0, protocol.delta + 1.0)
        )

    def test_estimator_never_below_floor(self):
        protocol = OneFailAdaptive()
        for slot in range(100):
            protocol.notify(reception(slot))
            assert protocol.density_estimate >= protocol.delta + 1.0 - 1e-12

    def test_sigma_counts_receptions_only(self):
        protocol = OneFailAdaptive()
        protocol.notify(noise(0))
        protocol.notify(reception(1))
        protocol.notify(noise(2))
        protocol.notify(reception(3))
        assert protocol.messages_received == 2

    def test_own_delivery_does_not_change_state(self):
        protocol = OneFailAdaptive()
        before = (protocol.density_estimate, protocol.messages_received)
        protocol.notify(Observation(slot=0, transmitted=True, received=False, delivered=True))
        # Task 1 increment still applies on the AT step; sigma unchanged.
        assert protocol.messages_received == before[1]

    def test_estimator_tracks_contention_upward_under_silence(self):
        protocol = OneFailAdaptive()
        for slot in range(0, 2_000):
            protocol.notify(noise(slot))
        # 1000 AT steps -> estimator grew by ~1000.
        assert protocol.density_estimate == pytest.approx(protocol.delta + 1.0 + 1_000)


class TestDescribeAndLabel:
    def test_label(self):
        assert OneFailAdaptive.label == "One-Fail Adaptive"

    def test_describe_contains_delta(self):
        assert OneFailAdaptive().describe()["parameters"]["delta"] == pytest.approx(2.72)
