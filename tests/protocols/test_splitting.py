"""Tests for the binary-splitting (tree) baseline under collision detection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.model import ChannelModel, FeedbackModel, Observation, SlotOutcome
from repro.channel.radio_network import RadioNetwork
from repro.protocols.splitting import BinarySplitting
from repro.util.rng import derive_seeds


def cd_observation(slot: int, transmitted: bool, outcome: SlotOutcome, delivered: bool = False):
    return Observation(
        slot=slot,
        transmitted=transmitted,
        received=outcome is SlotOutcome.SUCCESS and not delivered and not transmitted,
        delivered=delivered,
        detected=outcome,
    )


class TestStateMachine:
    def test_starts_at_level_zero_and_transmits(self):
        protocol = BinarySplitting()
        assert protocol.level == 0
        assert protocol.will_transmit(0, np.random.default_rng(0))

    def test_waiting_station_does_not_transmit(self):
        protocol = BinarySplitting()
        protocol.will_transmit(0, np.random.default_rng(0))
        protocol.notify(cd_observation(0, transmitted=True, outcome=SlotOutcome.COLLISION))
        if protocol.level > 0:
            assert not protocol.will_transmit(1, np.random.default_rng(1))

    def test_collision_splits_top_group(self):
        """Over many coins, a colliding station stays on top about half the time."""
        stays = 0
        trials = 600
        for seed in range(trials):
            protocol = BinarySplitting()
            protocol.will_transmit(0, np.random.default_rng(seed))
            protocol.notify(cd_observation(0, transmitted=True, outcome=SlotOutcome.COLLISION))
            stays += protocol.level == 0
        assert 0.4 < stays / trials < 0.6

    def test_waiting_station_sinks_on_collision(self):
        protocol = BinarySplitting()
        protocol._level = 2  # station already below two pending groups
        protocol.notify(cd_observation(0, transmitted=False, outcome=SlotOutcome.COLLISION))
        assert protocol.level == 3

    def test_waiting_station_rises_on_success(self):
        protocol = BinarySplitting()
        protocol._level = 2
        protocol.notify(cd_observation(0, transmitted=False, outcome=SlotOutcome.SUCCESS))
        assert protocol.level == 1

    def test_waiting_station_rises_on_silence(self):
        protocol = BinarySplitting()
        protocol._level = 1
        protocol.notify(cd_observation(0, transmitted=False, outcome=SlotOutcome.SILENCE))
        assert protocol.level == 0

    def test_requires_collision_detection(self):
        protocol = BinarySplitting()
        with pytest.raises(RuntimeError):
            protocol.notify(
                Observation(slot=0, transmitted=True, received=False, delivered=False)
            )

    def test_split_probability_validated(self):
        with pytest.raises(ValueError):
            BinarySplitting(split_probability=0.0)
        with pytest.raises(ValueError):
            BinarySplitting(split_probability=1.0)


class TestEndToEnd:
    @pytest.mark.parametrize("k", [1, 2, 7, 30])
    def test_solves_static_k_selection(self, k):
        channel = ChannelModel(feedback=FeedbackModel.COLLISION_DETECTION)
        network = RadioNetwork.for_static_k_selection(
            BinarySplitting(), k=k, seed=3, channel=channel
        )
        result = network.run()
        assert result.solved
        assert result.successes == k

    def test_linear_makespan_with_tree_constant(self):
        """The tree algorithm resolves a batch of k in roughly 2.9k slots."""
        channel = ChannelModel(feedback=FeedbackModel.COLLISION_DETECTION)
        k = 300
        ratios = []
        for seed in derive_seeds(1, 5):
            network = RadioNetwork.for_static_k_selection(
                BinarySplitting(), k=k, seed=seed, channel=channel
            )
            result = network.run()
            assert result.solved
            ratios.append(result.makespan / k)
        mean_ratio = sum(ratios) / len(ratios)
        assert 2.2 < mean_ratio < 3.6
