"""Tests for the ablation and dynamic-arrival experiments."""

from __future__ import annotations

import pytest

from repro.channel.arrivals import PoissonArrival
from repro.core.one_fail_adaptive import OneFailAdaptive
from repro.experiments.ablations import run_ebb_delta_ablation, run_ofa_delta_ablation
from repro.experiments.dynamic import run_dynamic_experiment


class TestOfaDeltaAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_ofa_delta_ablation(deltas=[2.72, 2.95], k_values=(50, 200), runs=2, seed=3)

    def test_grid_size(self, result):
        assert len(result.cells) == 4

    def test_analysis_constants_recorded(self, result):
        by_delta = {cell.delta: cell.analysis_constant for cell in result.cells}
        assert by_delta[2.72] == pytest.approx(7.44)
        assert by_delta[2.95] == pytest.approx(7.9)

    def test_render_contains_headers(self, result):
        assert "mean steps/k" in result.render()

    def test_best_delta_defined(self, result):
        assert result.best_delta(200) in {2.72, 2.95}

    def test_best_delta_unknown_k_raises(self, result):
        with pytest.raises(ValueError):
            result.best_delta(999)


class TestEbbDeltaAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_ebb_delta_ablation(deltas=[0.1, 0.3], k_values=(200,), runs=2, seed=4)

    def test_grid_size(self, result):
        assert len(result.cells) == 2

    def test_ratios_positive(self, result):
        assert all(cell.ratio.mean > 1 for cell in result.cells)

    def test_small_delta_not_better(self, result):
        """A very small delta shrinks windows too slowly to help: ratio should not improve."""
        by_delta = {cell.delta: cell.ratio.mean for cell in result.cells}
        assert by_delta[0.1] >= by_delta[0.3] * 0.8


class TestDynamicExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_dynamic_experiment(k=24, runs=2, seed=11)

    def test_cells_cover_protocols_and_arrivals(self, result):
        labels = {(cell.protocol_label, cell.arrivals_description) for cell in result.cells}
        assert len(labels) == 6  # 2 protocols x 3 arrival processes

    def test_latencies_non_negative(self, result):
        assert all(cell.latency.minimum >= 0 for cell in result.cells)

    def test_makespan_at_least_k(self, result):
        assert all(cell.makespan.mean >= cell.k for cell in result.cells)

    def test_render(self, result):
        text = result.render()
        assert "mean latency" in text
        assert "One-Fail Adaptive" in text

    def test_custom_protocols_and_arrivals(self):
        result = run_dynamic_experiment(
            k=12,
            runs=1,
            protocols=[("OFA", OneFailAdaptive())],
            arrival_factories=[("poisson", PoissonArrival(k=12, rate=0.3))],
        )
        assert len(result.cells) == 1

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            run_dynamic_experiment(k=1)
