"""Tests for the CSV / gnuplot / Markdown / JSON exporters."""

from __future__ import annotations

import csv
import json

import pytest

from repro.core.one_fail_adaptive import OneFailAdaptive
from repro.experiments.config import ExperimentConfig, ProtocolSpec
from repro.experiments.export import write_json, write_markdown, write_series_dat, write_sweep_csv
from repro.experiments.runner import run_sweep


@pytest.fixture(scope="module")
def small_sweep():
    specs = [
        ProtocolSpec(key="ofa", label="One-Fail Adaptive", factory=lambda k: OneFailAdaptive())
    ]
    config = ExperimentConfig(k_values=[10, 30], runs=3, seed=1)
    return run_sweep(specs, config)


class TestCsvExport:
    def test_one_row_per_run(self, small_sweep, tmp_path):
        path = write_sweep_csv(small_sweep, tmp_path / "runs.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 6  # 2 sizes x 3 runs

    def test_columns_and_values(self, small_sweep, tmp_path):
        path = write_sweep_csv(small_sweep, tmp_path / "runs.csv")
        with path.open() as handle:
            row = next(csv.DictReader(handle))
        assert row["protocol_key"] == "ofa"
        assert row["solved"] == "True"
        assert int(row["makespan"]) >= int(row["k"])
        assert float(row["steps_per_node"]) > 1.0

    def test_creates_parent_directories(self, small_sweep, tmp_path):
        path = write_sweep_csv(small_sweep, tmp_path / "nested" / "dir" / "runs.csv")
        assert path.exists()


class TestGnuplotExport:
    def test_one_file_per_protocol(self, small_sweep, tmp_path):
        paths = write_series_dat(small_sweep, tmp_path / "series")
        assert [path.name for path in paths] == ["ofa.dat"]

    def test_file_contents(self, small_sweep, tmp_path):
        path = write_series_dat(small_sweep, tmp_path / "series")[0]
        lines = path.read_text().splitlines()
        assert lines[0].startswith("#")
        data_lines = [line.split() for line in lines[1:]]
        assert [int(fields[0]) for fields in data_lines] == [10, 30]
        assert all(float(fields[1]) >= 10 for fields in data_lines)


class TestMarkdownExport:
    def test_write_markdown(self, tmp_path):
        path = write_markdown(["a", "b"], [[1, 2.5]], tmp_path / "table.md")
        text = path.read_text()
        assert text.startswith("| a")
        assert "2.50" in text


class TestJsonExport:
    def test_structure(self, small_sweep, tmp_path):
        path = write_json(small_sweep, tmp_path / "summary.json")
        payload = json.loads(path.read_text())
        assert payload["config"]["runs"] == 3
        assert len(payload["cells"]) == 2
        cell = payload["cells"][0]
        assert cell["protocol_key"] == "ofa"
        assert cell["solved_runs"] == 3
        assert cell["makespan"]["mean"] > 0
        assert cell["ratio"]["mean"] > 1.0
