"""Tests for the generic sweep runner."""

from __future__ import annotations

import pytest

from repro.core.exp_backon_backoff import ExpBackonBackoff
from repro.core.one_fail_adaptive import OneFailAdaptive
from repro.experiments.config import ExperimentConfig, ProtocolSpec
from repro.experiments.runner import run_sweep


def small_specs() -> list[ProtocolSpec]:
    return [
        ProtocolSpec(key="ofa", label="One-Fail Adaptive", factory=lambda k: OneFailAdaptive()),
        ProtocolSpec(key="ebb", label="Exp Back-on/Back-off", factory=lambda k: ExpBackonBackoff()),
    ]


def small_config(runs: int = 3) -> ExperimentConfig:
    return ExperimentConfig(k_values=[10, 50], runs=runs, seed=99)


class TestRunSweep:
    def test_all_cells_present(self):
        sweep = run_sweep(small_specs(), small_config())
        assert set(sweep.cells) == {("ofa", 10), ("ofa", 50), ("ebb", 10), ("ebb", 50)}

    def test_runs_per_cell(self):
        sweep = run_sweep(small_specs(), small_config(runs=4))
        assert all(len(cell.results) == 4 for cell in sweep.cells.values())

    def test_all_runs_solved(self):
        sweep = run_sweep(small_specs(), small_config())
        assert all(cell.all_solved for cell in sweep.cells.values())

    def test_deterministic(self):
        first = run_sweep(small_specs(), small_config())
        second = run_sweep(small_specs(), small_config())
        for key in first.cells:
            assert first.cells[key].makespans == second.cells[key].makespans

    def test_seeds_differ_across_runs(self):
        sweep = run_sweep(small_specs(), small_config(runs=5))
        seeds = [run.seed for run in sweep.cell("ofa", 10).results]
        assert len(set(seeds)) == 5

    def test_series_sorted_by_k(self):
        sweep = run_sweep(small_specs(), small_config())
        ks, means = sweep.series("ofa")
        assert ks == [10, 50]
        assert all(value > 0 for value in means)

    def test_ratio_series(self):
        sweep = run_sweep(small_specs(), small_config())
        ks, ratios = sweep.ratio_series("ofa")
        _, means = sweep.series("ofa")
        assert ratios == pytest.approx([mean / k for mean, k in zip(means, ks)])

    def test_unknown_cell_raises(self):
        sweep = run_sweep(small_specs(), small_config())
        with pytest.raises(KeyError):
            sweep.cell("nope", 10)

    def test_progress_callback_invoked(self):
        calls = []
        run_sweep(
            small_specs()[:1],
            ExperimentConfig(k_values=[10], runs=2, seed=1),
            progress=lambda spec, k, done, total: calls.append((spec.key, k, done, total)),
        )
        assert calls == [("ofa", 10, 1, 2), ("ofa", 10, 2, 2)]

    def test_empty_specs_rejected(self):
        with pytest.raises(ValueError):
            run_sweep([], small_config())

    def test_totals(self):
        sweep = run_sweep(small_specs(), small_config(runs=2))
        assert sweep.total_runs() == 8
        assert sweep.total_elapsed_seconds() > 0

    def test_cell_statistics(self):
        sweep = run_sweep(small_specs(), small_config())
        cell = sweep.cell("ofa", 50)
        stats = cell.makespan_statistics()
        assert stats.count == 3
        assert stats.minimum <= cell.mean_makespan <= stats.maximum
        assert cell.mean_ratio == pytest.approx(cell.mean_makespan / 50)
