"""Tests for the experiment configuration and the paper's protocol suite."""

from __future__ import annotations

import pytest

from repro.core.exp_backon_backoff import ExpBackonBackoff
from repro.core.one_fail_adaptive import OneFailAdaptive
from repro.experiments.config import (
    DEFAULT_MAX_K,
    ExperimentConfig,
    ProtocolSpec,
    paper_k_values,
    paper_protocol_suite,
)
from repro.protocols.backoff import LogLogIteratedBackoff
from repro.protocols.log_fails_adaptive import LogFailsAdaptive


class TestPaperKValues:
    def test_default_powers_of_ten(self):
        values = paper_k_values(max_k=100_000)
        assert values == [10, 100, 1_000, 10_000, 100_000]

    def test_respects_environment_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_K", "1000")
        assert paper_k_values() == [10, 100, 1_000]

    def test_default_ceiling(self, monkeypatch):
        monkeypatch.delenv("REPRO_MAX_K", raising=False)
        assert max(paper_k_values()) == DEFAULT_MAX_K

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            paper_k_values(max_k=5, min_k=10)

    def test_custom_min(self):
        assert paper_k_values(max_k=1_000, min_k=100) == [100, 1_000]


class TestPaperProtocolSuite:
    def test_five_curves_by_default(self):
        suite = paper_protocol_suite()
        assert [spec.key for spec in suite] == ["lfa-xt2", "lfa-xt10", "ofa", "ebb", "llib"]

    def test_optional_exclusions(self):
        suite = paper_protocol_suite(include_lfa=False, include_llib=False)
        assert [spec.key for spec in suite] == ["ofa", "ebb"]

    def test_factories_build_correct_types(self):
        suite = {spec.key: spec for spec in paper_protocol_suite()}
        assert isinstance(suite["ofa"].build(100), OneFailAdaptive)
        assert isinstance(suite["ebb"].build(100), ExpBackonBackoff)
        assert isinstance(suite["llib"].build(100), LogLogIteratedBackoff)
        assert isinstance(suite["lfa-xt2"].build(100), LogFailsAdaptive)

    def test_papers_parameters_applied(self):
        suite = {spec.key: spec for spec in paper_protocol_suite()}
        assert suite["ofa"].build(10).delta == pytest.approx(2.72)
        assert suite["ebb"].build(10).delta == pytest.approx(0.366)
        lfa = suite["lfa-xt10"].build(999)
        assert lfa.xi_t == pytest.approx(0.1)
        assert lfa.epsilon == pytest.approx(1 / 1_000)

    def test_analysis_column_values(self):
        suite = {spec.key: spec for spec in paper_protocol_suite()}
        assert suite["ofa"].analysis_text() == "7.4"
        assert suite["ebb"].analysis_text() == "14.9"
        assert suite["lfa-xt2"].analysis_text() == "7.8"
        assert suite["lfa-xt10"].analysis_text() == "4.4"
        assert "lglg" in suite["llib"].analysis_text()

    def test_lfa_factory_uses_its_own_k(self):
        spec = {s.key: s for s in paper_protocol_suite()}["lfa-xt2"]
        assert spec.build(10).epsilon != spec.build(1_000).epsilon


class TestExperimentConfig:
    def test_defaults(self):
        config = ExperimentConfig(k_values=[10, 100])
        assert config.runs == 10
        assert config.max_slots_factor == 10_000

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(k_values=[])
        with pytest.raises(ValueError):
            ExperimentConfig(k_values=[10], runs=0)
        with pytest.raises(ValueError):
            ExperimentConfig(k_values=[0])
        with pytest.raises(ValueError):
            ExperimentConfig(k_values=[10], max_slots_factor=1)

    def test_describe(self):
        config = ExperimentConfig(k_values=[10], runs=2, seed=7)
        description = config.describe()
        assert description["k_values"] == [10]
        assert description["runs"] == 2
        assert description["seed"] == 7


class TestProtocolSpec:
    def test_analysis_text_formats_ratio(self):
        spec = ProtocolSpec(
            key="x", label="X", factory=lambda k: OneFailAdaptive(), analysis_ratio=lambda k: 3.14159
        )
        assert spec.analysis_text(float_format=".2f") == "3.14"

    def test_analysis_text_falls_back_to_note(self):
        spec = ProtocolSpec(key="x", label="X", factory=lambda k: OneFailAdaptive())
        assert spec.analysis_text() == "-"
