"""Tests for the Figure 1 and Table 1 reproduction harnesses (scaled down)."""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig, paper_protocol_suite
from repro.experiments.figure1 import main as figure1_main
from repro.experiments.figure1 import reproduce_figure1
from repro.experiments.table1 import PAPER_TABLE1, main as table1_main
from repro.experiments.table1 import reproduce_table1


@pytest.fixture(scope="module")
def tiny_config() -> ExperimentConfig:
    return ExperimentConfig(k_values=[10, 100], runs=2, seed=5)


@pytest.fixture(scope="module")
def tiny_figure(tiny_config):
    return reproduce_figure1(config=tiny_config)


@pytest.fixture(scope="module")
def tiny_table(tiny_config):
    return reproduce_table1(config=tiny_config)


class TestFigure1:
    def test_all_curves_present(self, tiny_figure):
        assert set(tiny_figure.series) == {"lfa-xt2", "lfa-xt10", "ofa", "ebb", "llib"}

    def test_series_shapes(self, tiny_figure):
        for ks, means in tiny_figure.series.values():
            assert ks == [10, 100]
            assert len(means) == 2
            assert all(mean >= k for mean, k in zip(means, ks))

    def test_render_plot_mentions_all_labels(self, tiny_figure):
        text = tiny_figure.render_plot(width=40, height=12)
        assert "One-Fail Adaptive" in text
        assert "Exp Back-on/Back-off" in text

    def test_render_table_has_k_rows(self, tiny_figure):
        table = tiny_figure.render_table()
        assert "10" in table and "100" in table

    def test_custom_spec_subset(self, tiny_config):
        specs = paper_protocol_suite(include_lfa=False, include_llib=False)
        figure = reproduce_figure1(config=tiny_config, specs=specs)
        assert set(figure.series) == {"ofa", "ebb"}


class TestTable1:
    def test_measured_ratios_reasonable(self, tiny_table):
        for spec in tiny_table.specs:
            for k in (10, 100):
                ratio = tiny_table.measured_ratio(spec.key, k)
                assert 1.0 <= ratio < 1_000

    def test_rows_structure(self, tiny_table):
        headers, body = tiny_table.rows()
        assert headers == ["k", "10", "100", "Analysis"]
        assert len(body) == 5
        assert body[2][0] == "One-Fail Adaptive"

    def test_analysis_column_values(self, tiny_table):
        headers, body = tiny_table.rows()
        analysis_by_label = {row[0]: row[-1] for row in body}
        assert analysis_by_label["One-Fail Adaptive"] == "7.4"
        assert analysis_by_label["Exp Back-on/Back-off"] == "14.9"

    def test_comparison_rows_include_paper_values(self, tiny_table):
        headers, body = tiny_table.comparison_rows()
        assert headers[-1] == "paper steps/k"
        ofa_rows = [row for row in body if row[0] == "One-Fail Adaptive"]
        assert ofa_rows[0][-1] == "4.0"  # the paper's value at k = 10

    def test_render_formats(self, tiny_table):
        assert "Analysis" in tiny_table.render()
        assert tiny_table.render(markdown=True).startswith("| k")
        assert "measured steps/k" in tiny_table.render_comparison()


class TestPaperReferenceTable:
    def test_reference_covers_all_protocols_and_sizes(self):
        for key, row in PAPER_TABLE1.items():
            assert "analysis" in row
            for exponent in range(1, 8):
                assert 10**exponent in row, (key, exponent)

    def test_reference_ofa_value(self):
        assert PAPER_TABLE1["ofa"][1_000_000] == 7.4


class TestCommandLineEntryPoints:
    def test_figure1_main_runs(self, capsys, tmp_path):
        exit_code = figure1_main(
            ["--max-k", "100", "--runs", "1", "--quiet", "--output-dir", str(tmp_path)]
        )
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "Figure 1" in captured
        assert (tmp_path / "figure1_runs.csv").exists()
        assert (tmp_path / "figure1_summary.json").exists()

    def test_table1_main_runs(self, capsys, tmp_path):
        exit_code = table1_main(
            ["--max-k", "100", "--runs", "1", "--quiet", "--output-dir", str(tmp_path)]
        )
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "Table 1" in captured
        assert (tmp_path / "table1_measured.md").exists()
        assert (tmp_path / "table1_comparison.md").exists()


class TestSessionPathParity:
    """The Session-routed sweep must reproduce the legacy factory path exactly.

    The comparisons run with cross-cell fusion disabled: factory-only specs
    take the legacy per-cell path by construction, and fused fair cells are
    distributionally — not bit — identical to per-cell batch runs (that
    parity is pinned in tests/engine/test_megabatch.py).
    """

    def legacy_suite(self):
        """The paper suite expressed as factory-only specs (pre-scenario form)."""
        from repro.experiments.config import ProtocolSpec
        session_suite = paper_protocol_suite()
        return [
            ProtocolSpec(
                key=spec.key,
                label=spec.label,
                factory=(lambda k, s=spec.spec: __import__("repro").build_protocol(s, k)),
                analysis_ratio=spec.analysis_ratio,
                analysis_note=spec.analysis_note,
            )
            for spec in session_suite
        ]

    def test_figure1_identical_through_session(self):
        no_fuse = ExperimentConfig(k_values=[10, 100], runs=2, seed=5, fuse=False)
        session_path = reproduce_figure1(config=no_fuse)
        legacy_path = reproduce_figure1(config=no_fuse, specs=self.legacy_suite())
        assert session_path.series == legacy_path.series

    def test_table1_identical_through_session(self):
        no_fuse = ExperimentConfig(k_values=[10, 100], runs=2, seed=5, fuse=False)
        session_path = reproduce_table1(config=no_fuse)
        legacy_path = reproduce_table1(config=no_fuse, specs=self.legacy_suite())
        for spec in session_path.specs:
            for k in no_fuse.k_values:
                assert session_path.measured_ratio(spec.key, k) == legacy_path.measured_ratio(
                    spec.key, k
                )

    def test_workers_and_batch_flags_still_honoured(self, tiny_config):
        serial = reproduce_figure1(config=tiny_config)
        parallel = reproduce_figure1(
            config=ExperimentConfig(k_values=[10, 100], runs=2, seed=5, workers=2)
        )
        assert serial.series == parallel.series
        per_run = reproduce_figure1(
            config=ExperimentConfig(k_values=[10, 100], runs=2, seed=5, batch=False)
        )
        assert set(per_run.series) == set(serial.series)

    def test_store_backed_figure1_identical(self, tiny_config, tmp_path):
        stored = reproduce_figure1(config=tiny_config, store_dir=tmp_path)
        resumed = reproduce_figure1(config=tiny_config, store_dir=tmp_path)
        in_memory = reproduce_figure1(config=tiny_config)
        assert stored.series == in_memory.series
        assert resumed.series == in_memory.series
