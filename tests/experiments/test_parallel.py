"""Tests for the parallel execution layer and the parallel sweep path.

The contract under test: a sweep dispatched over N worker processes is
*bit-identical* to the serial sweep, because every work unit carries its own
pre-derived seed and the executor returns outcomes in submission order.
"""

from __future__ import annotations

import pytest

from repro.channel.arrivals import PoissonArrival
from repro.core.exp_backon_backoff import ExpBackonBackoff
from repro.core.one_fail_adaptive import OneFailAdaptive
from repro.experiments.config import ExperimentConfig, ProtocolSpec
from repro.experiments.parallel import (
    ParallelExecutor,
    SimulationUnit,
    UnitOutcome,
    resolve_workers,
)
from repro.experiments.runner import run_sweep


def small_specs() -> list[ProtocolSpec]:
    return [
        ProtocolSpec(key="ofa", label="One-Fail Adaptive", factory=lambda k: OneFailAdaptive()),
        ProtocolSpec(key="ebb", label="Exp Back-on/Back-off", factory=lambda k: ExpBackonBackoff()),
    ]


def small_units(count: int = 6) -> list[SimulationUnit]:
    return [
        SimulationUnit(protocol=OneFailAdaptive(), k=10, seed=seed, tag=("ofa", 10))
        for seed in range(count)
    ]


class TestResolveWorkers:
    def test_explicit_value_passes_through(self):
        assert resolve_workers(3) == 3

    def test_none_and_zero_mean_all_cpus(self):
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) == resolve_workers(None)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-2)


class TestParallelExecutor:
    def test_serial_executes_in_order(self):
        outcomes = ParallelExecutor(workers=1).run(small_units())
        assert [outcome.index for outcome in outcomes] == list(range(6))
        assert all(isinstance(outcome, UnitOutcome) for outcome in outcomes)
        assert all(outcome.result.solved for outcome in outcomes)

    def test_pool_returns_submission_order(self):
        outcomes = ParallelExecutor(workers=2).run(small_units())
        assert [outcome.index for outcome in outcomes] == list(range(6))

    def test_pool_matches_serial_bitwise(self):
        units = small_units()
        serial = ParallelExecutor(workers=1).run(units)
        pooled = ParallelExecutor(workers=3).run(units)
        assert [outcome.result for outcome in serial] == [outcome.result for outcome in pooled]

    def test_tags_travel_with_outcomes(self):
        outcomes = ParallelExecutor(workers=2).run(small_units())
        assert all(outcome.tag == ("ofa", 10) for outcome in outcomes)

    def test_elapsed_is_positive(self):
        outcomes = ParallelExecutor(workers=1).run(small_units(2))
        assert all(outcome.elapsed_seconds > 0 for outcome in outcomes)

    def test_progress_called_once_per_unit(self):
        seen = []
        ParallelExecutor(workers=2).run(small_units(), progress=seen.append)
        assert sorted(outcome.index for outcome in seen) == list(range(6))

    def test_empty_unit_list(self):
        assert ParallelExecutor(workers=2).run([]) == []

    def test_dynamic_units_cross_process(self):
        units = [
            SimulationUnit(
                protocol=OneFailAdaptive(),
                k=12,
                seed=seed,
                arrivals=PoissonArrival(k=12, rate=0.2),
            )
            for seed in range(4)
        ]
        serial = ParallelExecutor(workers=1).run(units)
        pooled = ParallelExecutor(workers=2).run(units)
        assert [outcome.result for outcome in serial] == [outcome.result for outcome in pooled]
        assert all(len(outcome.result.metadata["latencies"]) == 12 for outcome in pooled)


class TestParallelSweep:
    def test_workers_4_reproduces_workers_1_exactly(self):
        config = ExperimentConfig(k_values=[10, 50], runs=3, seed=99)
        serial = run_sweep(small_specs(), config, workers=1)
        parallel = run_sweep(small_specs(), config, workers=4)
        assert set(serial.cells) == set(parallel.cells)
        for key in serial.cells:
            assert serial.cells[key].results == parallel.cells[key].results
            assert serial.cells[key].makespans == parallel.cells[key].makespans

    def test_config_workers_is_the_default(self):
        config = ExperimentConfig(k_values=[10], runs=2, seed=5, workers=2)
        sweep = run_sweep(small_specs()[:1], config)
        reference = run_sweep(small_specs()[:1], ExperimentConfig(k_values=[10], runs=2, seed=5))
        assert sweep.cell("ofa", 10).results == reference.cell("ofa", 10).results

    def test_progress_counts_per_cell(self):
        calls = []
        run_sweep(
            small_specs(),
            ExperimentConfig(k_values=[10], runs=2, seed=1),
            workers=2,
            progress=lambda spec, k, done, total: calls.append((spec.key, k, done, total)),
        )
        assert sorted(calls) == [
            ("ebb", 10, 1, 2),
            ("ebb", 10, 2, 2),
            ("ofa", 10, 1, 2),
            ("ofa", 10, 2, 2),
        ]

    def test_arrivals_factory_routes_to_slot_engine(self):
        config = ExperimentConfig(k_values=[12], runs=2, seed=3)
        sweep = run_sweep(
            small_specs()[:1],
            config,
            arrivals_factory=lambda k: PoissonArrival(k=k, rate=0.2),
        )
        for result in sweep.cell("ofa", 12).results:
            assert result.engine == "slot"
            assert result.metadata["arrivals"] == "PoissonArrival"

    def test_arrivals_sweep_parallel_matches_serial(self):
        config = ExperimentConfig(k_values=[12], runs=2, seed=3)
        factory = lambda k: PoissonArrival(k=k, rate=0.2)  # noqa: E731
        serial = run_sweep(small_specs()[:1], config, workers=1, arrivals_factory=factory)
        parallel = run_sweep(small_specs()[:1], config, workers=2, arrivals_factory=factory)
        assert serial.cell("ofa", 12).results == parallel.cell("ofa", 12).results
