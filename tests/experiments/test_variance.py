"""Tests for the predictability (makespan-dispersion) experiment."""

from __future__ import annotations

import pytest

from repro.experiments.config import ProtocolSpec, paper_protocol_suite
from repro.experiments.variance import run_variance_experiment
from repro.core.one_fail_adaptive import OneFailAdaptive


@pytest.fixture(scope="module")
def result():
    return run_variance_experiment(k_values=(500,), runs=5, seed=3)


class TestVarianceExperiment:
    def test_covers_full_suite(self, result):
        assert {cell.spec_key for cell in result.cells} == {
            "lfa-xt2", "lfa-xt10", "ofa", "ebb", "llib",
        }

    def test_statistics_consistent(self, result):
        for cell in result.cells:
            assert cell.makespan.count == 5
            assert cell.makespan.minimum <= cell.makespan.mean <= cell.makespan.maximum
            assert cell.coefficient_of_variation >= 0
            assert cell.spread >= 0

    def test_ofa_is_stable(self, result):
        """The paper: One-fail Adaptive has a "very stable" behaviour."""
        assert result.cell("ofa", 500).coefficient_of_variation < 0.05

    def test_lfa_less_stable_than_ofa(self, result):
        assert (
            result.cell("lfa-xt2", 500).coefficient_of_variation
            > result.cell("ofa", 500).coefficient_of_variation
        )

    def test_render(self, result):
        text = result.render()
        assert "CoV" in text
        assert "One-Fail Adaptive" in text

    def test_cell_lookup_error(self, result):
        with pytest.raises(KeyError):
            result.cell("ofa", 12345)

    def test_validation(self):
        with pytest.raises(ValueError):
            run_variance_experiment(runs=1)
        with pytest.raises(ValueError):
            run_variance_experiment(k_values=())

    def test_custom_spec_subset(self):
        specs = [ProtocolSpec(key="ofa", label="OFA", factory=lambda k: OneFailAdaptive())]
        result = run_variance_experiment(k_values=(100,), runs=3, specs=specs)
        assert len(result.cells) == 1
