"""Span tracing: nesting, propagation, JSONL sink, store siting, summaries."""

from __future__ import annotations

import json

import pytest

from repro.obs.tracing import (
    SpanEvent,
    TraceLog,
    configure_tracing,
    current_span_id,
    current_trace_id,
    new_trace_id,
    read_trace,
    span,
    summarize_trace,
    trace_context,
    trace_log_for_store,
    tracing_sink,
)
from repro.scenarios.store import JsonlStore
from repro.scenarios.store_chaos import ChaosStore
from repro.scenarios.store_sqlite import SqliteStore


@pytest.fixture
def sink(tmp_path):
    """A configured trace sink, torn down afterwards."""
    log = configure_tracing(tmp_path / "trace.jsonl")
    yield log
    configure_tracing(None)


class TestSpanNesting:
    def test_no_context_outside_spans(self):
        assert current_trace_id() is None
        assert current_span_id() is None

    def test_span_opens_and_closes_context(self):
        with span("outer"):
            trace = current_trace_id()
            outer_span = current_span_id()
            assert trace and outer_span
            with span("inner"):
                assert current_trace_id() == trace, "children share the trace"
                assert current_span_id() != outer_span
            assert current_span_id() == outer_span
        assert current_trace_id() is None

    def test_sibling_spans_get_distinct_traces(self):
        with span("a"):
            first = current_trace_id()
        with span("b"):
            second = current_trace_id()
        assert first != second

    def test_trace_context_adopts_id(self):
        trace = new_trace_id()
        with trace_context(trace):
            assert current_trace_id() == trace
            with span("child"):
                assert current_trace_id() == trace
        assert current_trace_id() is None

    def test_trace_context_none_is_noop(self):
        with trace_context(None):
            assert current_trace_id() is None

    def test_span_attrs_mutable_and_error_recorded(self, sink):
        with pytest.raises(RuntimeError):
            with span("failing", fixed=1) as sp:
                sp["extra"] = "yes"
                raise RuntimeError("boom")
        events = sink.read()
        assert len(events) == 1
        assert events[0].attrs == {"fixed": 1, "extra": "yes", "error": "RuntimeError"}


class TestSink:
    def test_no_sink_no_writes(self, tmp_path):
        assert tracing_sink() is None
        with span("quiet"):
            pass  # must not raise, must not write anywhere

    def test_events_written_with_parent_links(self, sink):
        with span("outer", k=64):
            with span("inner"):
                pass
        events = sink.read()
        assert [ev.name for ev in events] == ["inner", "outer"]
        inner, outer = events
        assert inner.trace == outer.trace
        assert inner.parent == outer.span
        assert outer.parent is None
        assert outer.attrs == {"k": 64}
        assert inner.dur_s >= 0 and outer.dur_s >= inner.dur_s

    def test_torn_final_line_is_skipped(self, sink):
        with span("kept"):
            pass
        with sink.path.open("a", encoding="utf-8") as fh:
            fh.write('{"trace": "deadbeef", "span": "01", "name": "torn", "dur_')
        events = read_trace(sink.path)
        assert [ev.name for ev in events] == ["kept"]

    def test_foreign_lines_are_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("not json\n{}\n" + json.dumps(
            {"trace": "t1", "span": "s1", "name": "ok", "ts": 1.0, "dur_s": 0.5}
        ) + "\n")
        events = read_trace(path)
        assert [ev.name for ev in events] == ["ok"]

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_trace(tmp_path / "absent.jsonl") == []

    def test_round_trip_preserves_fields(self, tmp_path):
        log = TraceLog(tmp_path / "t.jsonl")
        log.append(SpanEvent("t", "s", "p", "name", ts=1.5, dur_s=0.25, attrs={"a": 1}))
        (event,) = log.read()
        assert (event.trace, event.span, event.parent) == ("t", "s", "p")
        assert event.ts == 1.5 and event.dur_s == 0.25 and event.attrs == {"a": 1}


class TestStoreSiting:
    def test_jsonl_store_gets_root_trace_log(self, tmp_path):
        store = JsonlStore(tmp_path / "store")
        log = trace_log_for_store(store)
        assert log.path == tmp_path / "store" / "trace.jsonl"

    def test_sqlite_store_gets_sidecar(self, tmp_path):
        store = SqliteStore(tmp_path / "results.db")
        try:
            log = trace_log_for_store(store)
        finally:
            store.close()
        assert log.path == tmp_path / "results.db.trace.jsonl"

    def test_chaos_wrapper_delegates_to_inner(self, tmp_path):
        store = ChaosStore(JsonlStore(tmp_path / "store"))
        log = trace_log_for_store(store)
        assert log.path == tmp_path / "store" / "trace.jsonl"

    def test_none_store_has_no_log(self):
        assert trace_log_for_store(None) is None


class TestSummary:
    def _events(self):
        return [
            SpanEvent("t1", "s1", None, "job.run", ts=1.0, dur_s=2.0),
            SpanEvent("t1", "s2", "s1", "engine.run", ts=1.1, dur_s=1.5),
            SpanEvent("t2", "s3", None, "job.run", ts=2.0, dur_s=0.5),
            SpanEvent("t2", "s4", "s3", "engine.run", ts=2.1, dur_s=0.25),
        ]

    def test_stage_aggregation(self):
        summary = summarize_trace(self._events())
        assert summary["events"] == 4
        assert summary["traces"] == 2
        stages = {row["stage"]: row for row in summary["stages"]}
        assert stages["job.run"]["count"] == 2
        assert stages["job.run"]["total_s"] == pytest.approx(2.5)
        assert stages["job.run"]["mean_s"] == pytest.approx(1.25)
        assert stages["job.run"]["max_s"] == pytest.approx(2.0)
        # Sorted by total time, descending: job.run (2.5s) first.
        assert summary["stages"][0]["stage"] == "job.run"

    def test_slowest_keeps_roots_sorted(self):
        summary = summarize_trace(self._events())
        assert [row["trace"] for row in summary["slowest"]] == ["t1", "t2"]
        assert summary["slowest"][0]["root"] == "job.run"
        assert summary["slowest"][0]["spans"] == 2

    def test_retry_reentry_keeps_longest_root(self):
        events = [
            SpanEvent("t1", "s1", None, "job.run", ts=1.0, dur_s=0.5),
            SpanEvent("t1", "s2", None, "job.run", ts=2.0, dur_s=3.0),
        ]
        summary = summarize_trace(events)
        assert len(summary["slowest"]) == 1
        assert summary["slowest"][0]["dur_s"] == pytest.approx(3.0)

    def test_empty_log_summary(self):
        summary = summarize_trace([])
        assert summary == {"events": 0, "traces": 0, "stages": [], "slowest": []}
