"""Structured JSON logging tests: format, trace correlation, idempotence."""

from __future__ import annotations

import io
import json
import logging

from repro.obs.logs import JsonFormatter, configure_json_logging, get_logger
from repro.obs.tracing import span


def _capture_logger(stream: io.StringIO) -> logging.Logger:
    return configure_json_logging(level=logging.INFO, stream=stream)


def _teardown() -> None:
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        if getattr(handler, "_repro_json", False):
            root.removeHandler(handler)
    root.propagate = True


class TestJsonLogging:
    def test_lines_are_json_with_level_and_logger(self):
        stream = io.StringIO()
        _capture_logger(stream)
        try:
            get_logger("service.server").info("serving on %s", "http://x")
        finally:
            _teardown()
        payload = json.loads(stream.getvalue())
        assert payload["level"] == "INFO"
        assert payload["logger"] == "repro.service.server"
        assert payload["msg"] == "serving on http://x"
        assert "trace" not in payload

    def test_trace_id_attached_inside_span(self):
        stream = io.StringIO()
        _capture_logger(stream)
        try:
            with span("request"):
                get_logger("service").info("handling")
        finally:
            _teardown()
        payload = json.loads(stream.getvalue())
        assert len(payload["trace"]) == 16

    def test_extra_fields_merged(self):
        record = logging.LogRecord("repro.x", logging.INFO, "f.py", 1, "msg", (), None)
        record.fields = {"job": "j1", "state": "done"}
        payload = json.loads(JsonFormatter().format(record))
        assert payload["job"] == "j1" and payload["state"] == "done"

    def test_exception_type_recorded(self):
        stream = io.StringIO()
        _capture_logger(stream)
        try:
            try:
                raise ValueError("nope")
            except ValueError:
                get_logger("x").exception("failed")
        finally:
            _teardown()
        payload = json.loads(stream.getvalue().splitlines()[0])
        assert payload["exc"] == "ValueError"

    def test_reconfigure_replaces_handler(self):
        first, second = io.StringIO(), io.StringIO()
        _capture_logger(first)
        root = _capture_logger(second)
        try:
            json_handlers = [
                h for h in root.handlers if getattr(h, "_repro_json", False)
            ]
            assert len(json_handlers) == 1
            get_logger("x").info("once")
        finally:
            _teardown()
        assert first.getvalue() == ""
        assert json.loads(second.getvalue())["msg"] == "once"

    def test_get_logger_prefixes_names(self):
        assert get_logger("engine").name == "repro.engine"
        assert get_logger("repro.engine").name == "repro.engine"
        assert get_logger("repro").name == "repro"
