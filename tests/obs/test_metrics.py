"""Metrics registry and Prometheus exposition tests.

These exercise private :class:`~repro.obs.metrics.MetricsRegistry` instances,
not the process-wide ``REGISTRY``, so they are independent of whatever the
rest of the suite has already counted.
"""

from __future__ import annotations

import math
import threading

import pytest

from repro.obs import metrics
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    escape_label_value,
    format_value,
    set_enabled,
)


@pytest.fixture
def registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestCounter:
    def test_inc_accumulates(self, registry):
        c = registry.counter("repro_test_total", "help", ("who",))
        c.labels(who="a").inc()
        c.labels(who="a").inc(2.5)
        assert c.labels(who="a").value == 3.5

    def test_negative_inc_rejected(self, registry):
        c = registry.counter("repro_test_total", "help")
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1)

    def test_positional_and_keyword_labels_agree(self, registry):
        c = registry.counter("repro_test_total", "help", ("a", "b"))
        c.labels("x", "y").inc()
        c.labels(a="x", b="y").inc()
        assert c.labels("x", "y").value == 2

    def test_label_mismatch_rejected(self, registry):
        c = registry.counter("repro_test_total", "help", ("a",))
        with pytest.raises(ValueError, match="takes 1 label"):
            c.labels("x", "y")
        with pytest.raises(ValueError, match="unexpected labels"):
            c.labels(a="x", z="y")

    def test_concurrent_increments_lose_nothing(self, registry):
        c = registry.counter("repro_test_total", "help")
        child = c.labels()

        def spin():
            for _ in range(1000):
                child.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert child.value == 8000


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("repro_test_gauge", "help")
        g.set(10)
        g.labels().inc(5)
        g.labels().dec(3)
        assert g.labels().value == 12

    def test_set_function_wins_and_survives_probe_errors(self, registry):
        g = registry.gauge("repro_test_gauge", "help")
        g.set(1)
        g.set_function(lambda: 42)
        assert g.labels().value == 42

        def broken() -> float:
            raise RuntimeError("probe down")

        g.set_function(broken)
        assert math.isnan(g.labels().value)


class TestHistogram:
    def test_buckets_are_cumulative_and_monotone(self, registry):
        h = registry.histogram("repro_test_seconds", "help", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(value)
        snap = h.labels().snapshot()
        counts = list(snap["buckets"].values())
        assert counts == sorted(counts), "cumulative buckets must be monotone"
        assert counts[-1] == snap["count"] == 5
        assert snap["buckets"][math.inf] == 5
        assert snap["sum"] == pytest.approx(56.05)

    def test_inf_bucket_appended_when_missing(self, registry):
        h = registry.histogram("repro_test_seconds", "help", buckets=(1.0, 2.0))
        assert h.buckets[-1] == math.inf

    def test_unsorted_buckets_rejected(self, registry):
        with pytest.raises(ValueError, match="sorted"):
            registry.histogram("repro_test_seconds", "help", buckets=(2.0, 1.0))

    def test_default_buckets_cover_latency_range(self):
        assert DEFAULT_LATENCY_BUCKETS[0] <= 0.001
        assert DEFAULT_LATENCY_BUCKETS[-1] == math.inf


class TestRegistry:
    def test_get_or_create_returns_same_family(self, registry):
        a = registry.counter("repro_test_total", "help", ("x",))
        b = registry.counter("repro_test_total", "other help", ("x",))
        assert a is b

    def test_kind_conflict_rejected(self, registry):
        registry.counter("repro_test_total", "help")
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.gauge("repro_test_total", "help")

    def test_labelnames_conflict_rejected(self, registry):
        registry.counter("repro_test_total", "help", ("a",))
        with pytest.raises(ValueError, match="already registered with labels"):
            registry.counter("repro_test_total", "help", ("b",))

    def test_snapshot_shape(self, registry):
        registry.counter("repro_test_total", "help", ("who",)).labels(who="a").inc()
        snap = registry.snapshot()
        assert snap["repro_test_total"]["kind"] == "counter"
        assert snap["repro_test_total"]["series"]['{who="a"}'] == 1


class TestExposition:
    def test_escaping(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'

    def test_format_value(self):
        assert format_value(math.inf) == "+Inf"
        assert format_value(-math.inf) == "-Inf"
        assert format_value(float("nan")) == "NaN"
        assert format_value(3.0) == "3"
        assert format_value(0.25) == "0.25"

    def test_render_escapes_label_values(self, registry):
        c = registry.counter("repro_test_total", "help", ("path",))
        c.labels(path='a"b\n').inc()
        text = registry.render()
        assert 'path="a\\"b\\n"' in text

    def test_render_is_deterministic_and_sorted(self, registry):
        # Families and children created in reverse order still render sorted.
        registry.counter("repro_z_total", "z", ("l",)).labels(l="b").inc()
        registry.counter("repro_z_total", "z", ("l",)).labels(l="a").inc()
        registry.counter("repro_a_total", "a").inc()
        first = registry.render()
        second = registry.render()
        assert first == second
        lines = first.splitlines()
        assert lines[0] == "# HELP repro_a_total a"
        a_index = lines.index("repro_a_total 1")
        b_index = lines.index('repro_z_total{l="a"} 1')
        c_index = lines.index('repro_z_total{l="b"} 1')
        assert a_index < b_index < c_index

    def test_render_histogram_lines(self, registry):
        h = registry.histogram(
            "repro_test_seconds", "help", ("op",), buckets=(0.1, 1.0)
        )
        h.labels(op="x").observe(0.05)
        h.labels(op="x").observe(0.5)
        text = registry.render()
        assert "# TYPE repro_test_seconds histogram" in text
        assert 'repro_test_seconds_bucket{op="x",le="0.1"} 1' in text
        assert 'repro_test_seconds_bucket{op="x",le="1"} 2' in text
        assert 'repro_test_seconds_bucket{op="x",le="+Inf"} 2' in text
        assert 'repro_test_seconds_count{op="x"} 2' in text
        assert 'repro_test_seconds_sum{op="x"}' in text

    def test_bucket_lines_ascend(self, registry):
        h = registry.histogram("repro_test_seconds", "help")
        h.observe(0.42)
        text = registry.render()
        bucket_lines = [
            line for line in text.splitlines() if "_bucket{" in line
        ]
        bounds = [line.split('le="')[1].split('"')[0] for line in bucket_lines]
        parsed = [math.inf if b == "+Inf" else float(b) for b in bounds]
        assert parsed == sorted(parsed)
        assert parsed[-1] == math.inf


class TestEnabledToggle:
    def test_disabled_metrics_freeze(self, registry):
        c = registry.counter("repro_test_total", "help")
        g = registry.gauge("repro_test_gauge", "help")
        h = registry.histogram("repro_test_seconds", "help")
        c.inc()
        set_enabled(False)
        try:
            c.inc()
            g.set(99)
            h.observe(1.0)
            assert not metrics.enabled()
        finally:
            set_enabled(True)
        assert metrics.enabled()
        assert c.labels().value == 1
        assert g.labels().value == 0
        assert h.labels().snapshot()["count"] == 0
