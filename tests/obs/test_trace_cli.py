"""CLI tests for ``repro trace`` and the observability flags on serve/submit."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import configure_tracing, span
from repro.service import create_server
from repro.service.client import ServiceClient

SPEC = "one-fail-adaptive k=48 reps=3 seed=11"


@pytest.fixture
def trace_file(tmp_path):
    """A small trace log written through the real span machinery."""
    path = tmp_path / "trace.jsonl"
    configure_tracing(path)
    try:
        with span("job.run", job="job-1"):
            with span("engine.batch", engine="batch", k=64):
                pass
            with span("store.append", runs=3):
                pass
        with span("job.run", job="job-2"):
            pass
    finally:
        configure_tracing(None)
    return path


class TestTraceCommand:
    def test_summary_table(self, capsys, trace_file):
        assert main(["trace", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "4 event(s) across 2 trace(s)" in out
        assert "job.run" in out and "engine.batch" in out and "store.append" in out
        assert "slowest traces:" in out
        assert "job=job-1" in out

    def test_json_summary(self, capsys, trace_file):
        assert main(["trace", str(trace_file), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["events"] == 4
        assert payload["traces"] == 2
        stages = {row["stage"] for row in payload["stages"]}
        assert stages == {"job.run", "engine.batch", "store.append"}
        assert len(payload["slowest"]) == 2

    def test_missing_file_is_clean_error(self, capsys, tmp_path):
        assert main(["trace", str(tmp_path / "absent.jsonl")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_empty_file_reports_no_events(self, capsys, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["trace", str(path)]) == 0
        assert "no events on record" in capsys.readouterr().out


class TestObsFlags:
    def test_serve_parser_accepts_no_obs(self):
        args = build_parser().parse_args(["serve", "--no-obs"])
        assert args.obs is False
        assert build_parser().parse_args(["serve"]).obs is True

    def test_submit_wait_prints_progress_to_stderr(self, capsys, tmp_path):
        server = create_server(port=0, store_dir=tmp_path / "store", quiet=True)
        server.start_background()
        try:
            assert main(["submit", SPEC, "--url", server.url]) == 0
        finally:
            server.close()
            configure_tracing(None)
        captured = capsys.readouterr()
        assert "replication(s)" in captured.err
        assert "replication(s)" not in captured.out

    def test_submit_json_suppresses_progress(self, capsys, tmp_path):
        server = create_server(port=0, store_dir=tmp_path / "store", quiet=True)
        server.start_background()
        try:
            client = ServiceClient(server.url, timeout=30.0)
            first = client.submit(SPEC)
            client.wait(first.id, timeout=60.0)
            assert main(["submit", SPEC, "--url", server.url, "--json"]) == 0
        finally:
            server.close()
            configure_tracing(None)
        captured = capsys.readouterr()
        json.loads(captured.out)  # stdout is exactly the JSON payload
        assert "replication(s)" not in captured.err
