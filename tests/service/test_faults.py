"""Fault-injection tests: every recovery path, deterministically.

Crash/restart journal replay (zero lost submissions, zero duplicate
simulations), retry-with-backoff on injected store faults with partial-cell
resume, per-job deadlines and cancellation, bounded-queue 503 + Retry-After
with client backoff, HTTP 5xx / connection-reset client retries, flaky
federation sync, and the adaptive ``ServiceClient.wait`` poller.  All chaos
is seeded through :class:`~repro.service.reliability.FaultInjector`, so
every failure fires at the same place on every run.
"""

from __future__ import annotations

import time

import pytest

from repro.scenarios import Scenario, Session, open_store
from repro.scenarios.federation import sync
from repro.service import (
    JOB_CANCELLED,
    JOB_DONE,
    JOB_QUEUED,
    FaultInjector,
    JobManager,
    Overloaded,
    ReproServer,
    RetryPolicy,
    ServiceClient,
    ServiceError,
    SimulatedCrash,
    TransientServiceError,
    create_server,
    journal_for_store,
)
from repro.service.wire import JobStatus

pytestmark = pytest.mark.chaos

#: No-sleep retry policy: attempts are exhausted instantly in tests.
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=False)


def scenario(text: str = "one-fail-adaptive k=40 reps=3 seed=7") -> Scenario:
    return Scenario.parse(text)


def make_manager(session: Session, **kwargs) -> JobManager:
    """A thread-less manager with instant retries (drive via process_next)."""
    kwargs.setdefault("retry_policy", FAST_RETRY)
    kwargs.setdefault("retry_sleep", lambda _delay: None)
    kwargs.setdefault("journal", journal_for_store(session.store))
    return JobManager(session, start=False, **kwargs)


def store_run_lines(store_dir, scen: Scenario) -> int:
    """Raw ``kind: run`` line count in the cell's JSONL file — duplicates
    would show up here even though ``load()`` dedups by replication."""
    import json

    path = store_dir / f"{scen.content_hash()}.jsonl"
    if not path.exists():
        return 0
    return sum(
        1
        for line in path.read_text(encoding="utf-8").splitlines()
        if line.strip() and json.loads(line).get("kind") == "run"
    )


class TestJournalReplay:
    def test_kill_and_restart_loses_no_submissions(self, tmp_path):
        store_dir = tmp_path / "store"
        first = scenario("one-fail-adaptive k=40 reps=2 seed=1")
        second = scenario("one-fail-adaptive k=40 reps=2 seed=2")
        manager = make_manager(Session(store_dir=store_dir))
        manager.submit(first)
        manager.submit(second)
        manager.process_next()  # only the first job ran before the "crash"
        # Kill: the manager is simply abandoned, queue contents and all.
        session = Session(store_dir=store_dir)
        reborn = make_manager(session)
        assert reborn.replay_journal() == 1  # first was marked done; second wasn't
        assert reborn.lifetime_counts()["replayed"] == 1
        job = reborn.process_next()
        assert job is not None and job.state == JOB_DONE
        assert job.scenario == second
        # Zero lost: both cells complete.  Zero duplicates: the first cell
        # was not re-simulated (its replay would have come back "cached").
        assert session.cached_count(first) == 2
        assert session.cached_count(second) == 2
        assert store_run_lines(store_dir, first) == 2
        assert store_run_lines(store_dir, second) == 2

    def test_crash_after_persist_replays_as_cached(self, tmp_path):
        store_dir = tmp_path / "store"
        chaos = FaultInjector(seed=0, rates={"worker-crash": 1.0}, caps={"worker-crash": 1})
        manager = make_manager(Session(store_dir=store_dir), fault_injector=chaos)
        job, _ = manager.submit(scenario())
        # The worker dies after the results are persisted but before the
        # journal mark — exactly like a killed process.
        with pytest.raises(SimulatedCrash):
            manager.process_next()
        assert job.state != JOB_DONE  # never reached the terminal bookkeeping
        assert manager.journal.backlog() == 1
        # Next boot: replay deduplicates to the store — zero new simulations.
        session = Session(store_dir=store_dir)
        reborn = make_manager(session)
        assert reborn.replay_journal() == 1
        replayed = reborn.jobs()[0]
        assert replayed.state == JOB_DONE
        assert replayed.cached is True
        assert replayed.result_set.new_runs == 0
        assert store_run_lines(store_dir, scenario()) == 3
        assert reborn.journal.backlog() == 0

    # The worker thread dying IS the scenario under test.
    @pytest.mark.filterwarnings("ignore::pytest.PytestUnhandledThreadExceptionWarning")
    def test_http_restart_round_trip(self, tmp_path):
        store_dir = tmp_path / "store"
        chaos = FaultInjector(seed=0, rates={"worker-crash": 1.0}, caps={"worker-crash": 1})
        server = create_server(store_dir=store_dir, quiet=True, fault_injector=chaos)
        server.start_background()
        client = ServiceClient(server.url, timeout=30.0)
        try:
            client.submit(scenario())
            # The job persists its replications, then its worker crashes
            # before the journal mark; wait for the store to fill.
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if any(
                    record["replications_on_record"] == 3
                    for record in client.store_records()
                ):
                    break
                time.sleep(0.02)
            else:
                pytest.fail("store never filled")
            assert client.health()["journal"]["backlog"] == 1
        finally:
            server.close()
        # Restart on the same store: the journal replays before traffic.
        server = create_server(store_dir=store_dir, quiet=True)
        client = ServiceClient(server.url, timeout=30.0)
        server.start_background()
        try:
            statuses = client.jobs()
            assert len(statuses) == 1
            assert statuses[0].state == JOB_DONE
            assert client.health()["journal"]["backlog"] == 0
            assert client.health()["totals"]["replayed"] == 1
        finally:
            server.close()
        assert store_run_lines(store_dir, scenario()) == 3  # zero duplicates

    def test_drain_keeps_queued_jobs_journaled(self, tmp_path):
        store_dir = tmp_path / "store"
        manager = make_manager(Session(store_dir=store_dir))
        manager.submit(scenario("one-fail-adaptive k=40 reps=2 seed=1"))
        manager.submit(scenario("one-fail-adaptive k=40 reps=2 seed=2"))
        assert manager.drain() == 2
        assert manager.journal.backlog() == 2
        assert manager.accepting is False
        with pytest.raises(Overloaded):
            manager.submit(scenario("one-fail-adaptive k=40 reps=2 seed=3"))
        reborn = make_manager(Session(store_dir=store_dir))
        assert reborn.replay_journal() == 2
        assert reborn.queue_depth() == 2

    def test_replay_converts_journaled_deadline_back_to_relative(self, tmp_path):
        """The journal persists the wall-clock ETA (monotonic clocks do not
        survive a restart); replay re-derives the seconds remaining."""
        store_dir = tmp_path / "store"
        manager = make_manager(Session(store_dir=store_dir))
        manager.submit(scenario(), deadline=3600.0)
        manager.drain()
        reborn = make_manager(Session(store_dir=store_dir))
        assert reborn.replay_journal() == 1
        job = reborn.jobs()[0]
        # Still roughly an hour of budget, on both clocks.
        assert job.deadline is not None and job.deadline_at is not None
        assert 3500.0 < job.deadline - time.monotonic() <= 3600.0
        assert 3500.0 < job.deadline_at - time.time() <= 3600.0

    def test_replay_of_expired_deadline_aborts_not_simulates(self, tmp_path):
        store_dir = tmp_path / "store"
        manager = make_manager(Session(store_dir=store_dir))
        job, _ = manager.submit(scenario(), deadline=0.001)
        manager.drain()
        time.sleep(0.01)  # the budget lapses while the process is "down"
        reborn = make_manager(Session(store_dir=store_dir))
        assert reborn.replay_journal() == 1
        replayed = reborn.process_next()
        assert replayed is not None and replayed.state == JOB_CANCELLED
        assert "deadline exceeded" in replayed.error
        assert replayed.attempts == 1  # aborted before any simulation work


class TestRetriesAndResume:
    def test_partial_cell_failure_resumes_from_completed_prefix(self, tmp_path):
        # The store dies on the third per-replication append (calls 1-2 are
        # skipped, at most one failure), so attempt 1 persists replications
        # 0-1 and crashes; attempt 2 must re-simulate ONLY the missing two.
        store_dir = tmp_path / "store"
        spec = (
            f"chaos:jsonl:{store_dir}"
            "?seed=1&append_fail=1&append_fail_skip=2&append_fail_max=1"
        )
        session = Session(store_dir=spec, batch=False)
        manager = make_manager(session)
        scen = scenario("one-fail-adaptive k=40 reps=4 seed=7")
        job, disposition = manager.submit(scen)
        assert disposition == "queued"
        manager.process_next()
        assert job.state == JOB_DONE
        assert job.attempts == 2
        assert manager.lifetime_counts()["retried"] == 1
        assert job.result_set.cached_runs == 2  # the persisted prefix
        assert job.result_set.new_runs == 2  # only the missing suffix re-ran
        assert store_run_lines(store_dir, scen) == 4  # zero duplicates

    def test_terminal_error_is_not_retried(self, tmp_path):
        session = Session(store_dir=tmp_path / "store")
        manager = make_manager(session)
        job, _ = manager.submit(scenario())

        def explode(*_args, **_kwargs):
            raise RuntimeError("engine exploded")  # not in the retryable tuple

        session.run = explode
        manager.process_next()
        assert job.state == "failed"
        assert job.attempts == 1
        assert manager.lifetime_counts()["retried"] == 0
        assert manager.last_failure["error"].endswith("engine exploded")

    def test_retries_give_up_after_max_attempts(self, tmp_path):
        spec = f"chaos:jsonl:{tmp_path / 'store'}?seed=1&append_fail=1"
        manager = make_manager(Session(store_dir=spec, batch=False))
        job, _ = manager.submit(scenario())
        manager.process_next()
        assert job.state == "failed"
        assert job.attempts == FAST_RETRY.max_attempts
        assert "injected store-append failure" in job.error


class TestCancellationAndDeadlines:
    def test_cancel_queued_job(self, tmp_path):
        manager = make_manager(Session(store_dir=tmp_path / "store"))
        keep, _ = manager.submit(scenario("one-fail-adaptive k=40 reps=2 seed=1"))
        drop, _ = manager.submit(scenario("one-fail-adaptive k=40 reps=2 seed=2"))
        assert manager.cancel(drop.id) == "cancelled"
        assert drop.state == JOB_CANCELLED
        assert drop.finished.is_set()
        assert manager.counts()[JOB_CANCELLED] == 1
        assert manager.process_next() is keep
        assert manager.process_next() is None  # the cancelled job never runs
        assert manager.cancel(keep.id) == "finished"
        assert manager.cancel("job-404") is None
        assert manager.journal.backlog() == 0  # both reached terminal marks

    def test_cancel_requested_aborts_before_work(self, tmp_path):
        manager = make_manager(Session(store_dir=tmp_path / "store"))
        job, _ = manager.submit(scenario())
        job.cancel_requested.set()  # what cancel() does to a running job
        manager.process_next()
        assert job.state == JOB_CANCELLED
        assert job.result_set is None
        assert manager.lifetime_counts()["cancelled"] == 1

    def test_cancel_running_job_is_cooperative(self, tmp_path):
        manager = make_manager(Session(store_dir=tmp_path / "store"))
        job, _ = manager.submit(scenario())
        job.state = "running"  # as the worker would set it
        assert manager.cancel(job.id) == "cancelling"
        assert job.cancel_requested.is_set()
        assert not job.finished.is_set()  # the worker finishes it, not cancel()

    def test_expired_deadline_cancels_with_deadline_error(self, tmp_path):
        manager = make_manager(Session(store_dir=tmp_path / "store"))
        # Deadlines are relative seconds-from-now; a non-positive budget is
        # already expired (the journal-replay path submits these).
        job, _ = manager.submit(scenario(), deadline=-1.0)
        assert job.deadline is not None
        manager.process_next()
        assert job.state == JOB_CANCELLED
        assert "deadline exceeded" in job.error
        # The wire reports the wall-clock ETA, not the monotonic limit.
        assert job.snapshot()["deadline"] == job.deadline_at
        assert job.deadline_at is not None and job.deadline_at <= time.time()

    def test_deadline_is_never_retried(self, tmp_path):
        manager = make_manager(Session(store_dir=tmp_path / "store"))
        job, _ = manager.submit(scenario(), deadline=-1.0)
        manager.process_next()
        assert job.attempts == 1
        assert manager.lifetime_counts()["retried"] == 0


class TestOverloadHTTP:
    @pytest.fixture
    def stalled_server(self, tmp_path):
        """A live server whose jobs only run when the test says so."""
        session = Session(store_dir=tmp_path / "store")
        jobs = make_manager(session, max_queue=1)
        server = ReproServer(("127.0.0.1", 0), session, jobs, quiet=True)
        server.start_background()
        yield server
        server.shutdown()
        server.server_close()

    def test_queue_full_returns_503_and_client_backs_off(self, stalled_server):
        manager = stalled_server.jobs
        no_retry = ServiceClient(stalled_server.url, retry=None)
        first = no_retry.submit(scenario("one-fail-adaptive k=40 reps=2 seed=1"))
        assert first.state == JOB_QUEUED
        # Queue is now full: an unretried client sees the 503 + hint.
        with pytest.raises(ServiceError) as info:
            no_retry.submit(scenario("one-fail-adaptive k=40 reps=2 seed=2"))
        assert info.value.status == 503
        assert getattr(info.value, "retry_after") >= 1.0
        assert no_retry.health()["status"] == "degraded"
        assert manager.lifetime_counts()["rejected"] == 1
        # A retrying client backs off (honouring Retry-After as the floor)
        # and succeeds once the backlog drains during its sleep.
        patient = ServiceClient(
            stalled_server.url,
            retry=RetryPolicy(max_attempts=4, base_delay=0.0, jitter=False),
        )
        delays = []

        def drain_one(delay: float) -> None:
            delays.append(delay)
            manager.process_next()

        patient._sleep = drain_one
        status = patient.submit(scenario("one-fail-adaptive k=40 reps=2 seed=2"))
        assert status.state == JOB_QUEUED
        assert delays and delays[0] >= 1.0  # the server's Retry-After floor

    def test_cancel_endpoint(self, stalled_server):
        client = ServiceClient(stalled_server.url)
        status = client.submit(scenario("one-fail-adaptive k=40 reps=2 seed=1"))
        payload = client.cancel(status.id)
        assert payload["cancelled"] is True
        assert JobStatus.from_wire(payload["job"]).state == JOB_CANCELLED
        with pytest.raises(ServiceError) as info:
            client.cancel(status.id)  # already finished now
        assert info.value.status == 409
        with pytest.raises(ServiceError) as info:
            client.cancel("job-404")
        assert info.value.status == 404

    def test_deadline_query_validation(self, stalled_server):
        client = ServiceClient(stalled_server.url, retry=None)
        with pytest.raises(ServiceError) as info:
            client.submit(scenario(), deadline=-3.0)
        assert info.value.status == 400
        status = client.submit(scenario(), deadline=120.0)
        assert status.deadline is not None
        assert status.deadline > time.time()


class TestClientHTTPRetries:
    def make_server(self, tmp_path, injector: FaultInjector) -> ReproServer:
        session = Session(store_dir=tmp_path / "store")
        jobs = make_manager(session)
        return ReproServer(
            ("127.0.0.1", 0), session, jobs, quiet=True, fault_injector=injector
        )

    def test_injected_500s_are_retried_until_success(self, tmp_path):
        injector = FaultInjector(seed=0, rates={"http-500": 1.0}, caps={"http-500": 2})
        server = self.make_server(tmp_path, injector)
        server.start_background()
        try:
            client = ServiceClient(
                server.url,
                retry=RetryPolicy(max_attempts=4, base_delay=0.0, jitter=False),
            )
            client._sleep = lambda _delay: None
            assert client.store_records() == []
            assert injector.fired["http-500"] == 2
        finally:
            server.shutdown()
            server.server_close()

    def test_injected_connection_reset_is_retried(self, tmp_path):
        injector = FaultInjector(seed=0, rates={"http-reset": 1.0}, caps={"http-reset": 1})
        server = self.make_server(tmp_path, injector)
        server.start_background()
        try:
            client = ServiceClient(
                server.url,
                retry=RetryPolicy(max_attempts=4, base_delay=0.0, jitter=False),
            )
            client._sleep = lambda _delay: None
            assert client.jobs() == []
            assert injector.fired["http-reset"] == 1
        finally:
            server.shutdown()
            server.server_close()

    def test_exhausted_retries_surface_as_transient(self, tmp_path):
        injector = FaultInjector(seed=0, rates={"http-500": 1.0})  # uncapped
        server = self.make_server(tmp_path, injector)
        server.start_background()
        try:
            client = ServiceClient(
                server.url,
                retry=RetryPolicy(max_attempts=2, base_delay=0.0, jitter=False),
            )
            client._sleep = lambda _delay: None
            with pytest.raises(TransientServiceError):
                client.store_records()
        finally:
            server.shutdown()
            server.server_close()

    def test_healthz_is_exempt_from_chaos(self, tmp_path):
        injector = FaultInjector(seed=0, rates={"http-500": 1.0})
        server = self.make_server(tmp_path, injector)
        server.start_background()
        try:
            client = ServiceClient(server.url, retry=None)
            assert client.health()["status"] == "ok"
        finally:
            server.shutdown()
            server.server_close()


class TestAdaptiveWait:
    def make_client(self) -> tuple[ServiceClient, list]:
        client = ServiceClient("http://127.0.0.1:9", retry=None)
        sleeps = []
        client._sleep = sleeps.append
        return client, sleeps

    @staticmethod
    def status(state: str) -> JobStatus:
        return JobStatus(
            id="job-1", hash="abc", scenario="s", state=state, done=0, total=3
        )

    def test_poll_interval_grows_to_cap(self, monkeypatch):
        client, sleeps = self.make_client()
        polls = iter([self.status("running")] * 8 + [self.status("done")])
        monkeypatch.setattr(client, "job", lambda _job_id: next(polls))
        result = client.wait("job-1", timeout=None, poll_interval=0.05,
                             max_poll_interval=0.4)
        assert result.state == "done"
        assert len(sleeps) == 8
        assert sleeps == sorted(sleeps)  # monotone growth...
        assert sleeps[0] == pytest.approx(0.05)
        assert max(sleeps) <= 0.4  # ...capped

    def test_transient_poll_failures_are_tolerated(self, monkeypatch):
        client, _sleeps = self.make_client()
        polls = iter(
            [TransientServiceError("reset"), TransientServiceError("refused"),
             self.status("done")]
        )

        def poll(_job_id):
            item = next(polls)
            if isinstance(item, Exception):
                raise item
            return item

        monkeypatch.setattr(client, "job", poll)
        assert client.wait("job-1", timeout=30.0).state == "done"

    def test_unreachable_job_times_out_with_last_error(self, monkeypatch):
        client, _sleeps = self.make_client()

        def poll(_job_id):
            raise TransientServiceError("connection refused")

        monkeypatch.setattr(client, "job", poll)
        with pytest.raises(ServiceError, match="unreachable"):
            client.wait("job-1", timeout=0.0)


class TestLifetimeCounters:
    def test_counts_survive_finished_job_eviction(self, tmp_path):
        manager = make_manager(Session(store_dir=tmp_path / "store"), max_finished=2)
        for seed in (1, 2, 3):
            manager.submit(scenario(f"one-fail-adaptive k=40 reps=2 seed={seed}"))
            manager.process_next()
        # Live counts drifted (the oldest finished job was evicted)...
        assert manager.counts()[JOB_DONE] == 2
        assert len(manager.jobs()) == 2
        # ...but the lifetime totals are monotonic and immune.
        totals = manager.lifetime_counts()
        assert totals["submitted"] == 3
        assert totals["done"] == 3
        assert totals["failed"] == totals["cancelled"] == 0


class TestFlakySync:
    def populate(self, tmp_path, count: int = 2):
        src = open_store(f"jsonl:{tmp_path / 'src'}")
        session = Session(store_dir=f"jsonl:{tmp_path / 'src'}")
        scens = [
            scenario(f"one-fail-adaptive k=40 reps=2 seed={seed}")
            for seed in range(1, count + 1)
        ]
        for scen in scens:
            session.run(scen)
        return src, scens

    def test_sync_retries_through_transient_append_faults(self, tmp_path):
        _src, scens = self.populate(tmp_path)
        dst_spec = f"chaos:jsonl:{tmp_path / 'dst'}?seed=1&append_fail=1&append_fail_max=1"
        dst = open_store(dst_spec)
        report = sync(
            f"jsonl:{tmp_path / 'src'}", dst,
            retry=FAST_RETRY, sleep=lambda _delay: None,
        )
        assert report.scenarios_failed == 0
        assert report.scenarios_copied == 2
        assert report.replications_copied == 4
        for scen in scens:
            assert sorted(dst.load(scen)) == [0, 1]

    def test_failed_cells_are_reported_and_resumable(self, tmp_path):
        _src, scens = self.populate(tmp_path)
        dst = open_store(
            f"chaos:jsonl:{tmp_path / 'dst'}?seed=1&append_fail=1&append_fail_max=1"
        )
        # No retry: the first cell's append fails (fault cap 1), the second
        # succeeds — a partial sync, recorded rather than raised.
        first = sync(f"jsonl:{tmp_path / 'src'}", dst)
        assert first.scenarios_failed == 1
        assert first.scenarios_copied == 1
        assert len(first.failures) == 1
        # Resume against the same store: the copied cell diffs to nothing,
        # only the failed cell moves (the injector's fault budget is spent).
        second = sync(f"jsonl:{tmp_path / 'src'}", dst)
        assert second.scenarios_failed == 0
        assert second.scenarios_copied == 1
        for scen in scens:
            assert sorted(dst.load(scen)) == [0, 1]
