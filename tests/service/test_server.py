"""Integration tests: a real server on an ephemeral port, driven by the client."""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.scenarios import Scenario, Session
from repro.service import (
    JOB_DONE,
    JobManager,
    ReproServer,
    ServiceClient,
    ServiceError,
    create_server,
)

SPEC = "one-fail-adaptive k=48 reps=3 seed=11"


@pytest.fixture
def server(tmp_path):
    """A serving ReproServer on an ephemeral port, with a persistent store."""
    server = create_server(port=0, store_dir=tmp_path / "store", quiet=True)
    server.start_background()
    yield server
    server.close()


@pytest.fixture
def client(server) -> ServiceClient:
    return ServiceClient(server.url, timeout=30.0)


class TestEndpoints:
    def test_healthz(self, client):
        payload = client.health()
        assert payload["status"] == "ok"
        assert payload["jobs"] == {
            "queued": 0, "running": 0, "done": 0, "failed": 0, "cancelled": 0,
        }
        assert payload["store"] is not None
        assert payload["queue"] == {"depth": 0, "limit": None, "accepting": True}
        assert payload["journal"] == {"backlog": 0}
        assert payload["last_failure"] is None
        totals = payload["totals"]
        assert totals["submitted"] == totals["rejected"] == totals["retried"] == 0

    def test_submit_wait_result_round_trip(self, client):
        status = client.submit(SPEC)
        assert status.total == 3
        status = client.wait(status.id, timeout=60.0)
        assert status.state == JOB_DONE
        assert status.done == 3
        payload = client.result(status.hash)
        assert payload["new_runs"] == 3
        assert payload["solved_runs"] == 3
        assert payload["hash"] == Scenario.parse(SPEC).content_hash()

    def test_resubmission_is_cached_with_zero_new_simulations(self, client):
        first = client.submit(SPEC)
        client.wait(first.id, timeout=60.0)
        second = client.submit(SPEC)
        assert second.cached is True
        assert second.state == JOB_DONE
        assert second.id != first.id
        payload = client.result(second.hash)
        assert payload["new_runs"] == 0
        assert payload["cached_runs"] == 3

    def test_submit_scenario_object_as_json(self, client):
        status = client.submit(Scenario.parse(SPEC))
        status = client.wait(status.id, timeout=60.0)
        assert status.state == JOB_DONE
        assert status.hash == Scenario.parse(SPEC).content_hash()

    def test_submit_toml_body(self, server, client):
        body = Scenario.parse(SPEC).to_toml().encode("utf-8")
        request = urllib.request.Request(
            server.url + "/scenarios", data=body, headers={"Content-Type": "application/toml"}
        )
        with urllib.request.urlopen(request, timeout=30.0) as response:
            payload = json.loads(response.read())
        assert payload["hash"] == Scenario.parse(SPEC).content_hash()
        client.wait(payload["job"]["id"], timeout=60.0)

    def test_store_listing_after_completion(self, client):
        assert client.store_records() == []
        status = client.submit(SPEC)
        client.wait(status.id, timeout=60.0)
        records = client.store_records()
        assert len(records) == 1
        assert records[0]["hash"] == status.hash
        assert records[0]["replications_on_record"] == 3

    def test_jobs_listing(self, client):
        status = client.submit(SPEC)
        client.wait(status.id, timeout=60.0)
        jobs = client.jobs()
        assert [job.id for job in jobs] == [status.id]

    def test_client_run_convenience(self, client):
        payload = client.run(SPEC, timeout=60.0)
        assert payload["solved_runs"] == 3

    def test_results_served_from_store_across_restart(self, tmp_path, client, server):
        status = client.submit(SPEC)
        client.wait(status.id, timeout=60.0)
        # A fresh server over the same store knows nothing of the old jobs but
        # still serves the hash — straight from the JSONL store.
        fresh = create_server(port=0, store_dir=tmp_path / "store", quiet=True)
        fresh.start_background()
        try:
            payload = ServiceClient(fresh.url).result(status.hash)
            assert payload["new_runs"] == 0
            assert payload["cached_runs"] == 3
        finally:
            fresh.close()


class TestErrors:
    def test_bad_scenario_spec_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit("definitely-not-a-protocol k=10")
        assert excinfo.value.status == 400

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.job("job-404")
        assert excinfo.value.status == 404

    def test_unknown_result_hash_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.result("feedfacecafebeef")
        assert excinfo.value.status == 404

    def test_traversal_hash_is_404_and_stays_inside_store(self, server, tmp_path):
        # A secret JSONL *outside* the store root must not be reachable via
        # a crafted /results/<hash> path (urllib normalises "..", so issue
        # the raw request by hand).
        outside = tmp_path / "outside.jsonl"
        outside.write_text('{"kind": "scenario"}\n', encoding="utf-8")
        import http.client

        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=10)
        connection.request("GET", "/results/../outside")
        response = connection.getresponse()
        assert response.status == 404
        connection.close()

    def test_unknown_path_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("/nope")
        assert excinfo.value.status == 404

    def test_unreachable_server_is_service_error(self):
        unreachable = ServiceClient("http://127.0.0.1:9", timeout=2.0)
        with pytest.raises(ServiceError):
            unreachable.health()


class TestResultsIngest:
    """The federation receive path: ``POST /results/<hash>``."""

    @staticmethod
    def _runs_from_session(tmp_path):
        from repro.scenarios import open_store

        scenario = Scenario.parse(SPEC)
        store = open_store(tmp_path / "donor")
        Session(store_dir=store).run(scenario)
        return scenario, [run for _, run in sorted(store.load(scenario).items())]

    def test_push_then_submit_is_cached(self, tmp_path, client):
        scenario, runs = self._runs_from_session(tmp_path)
        payload = client.push_runs(scenario, runs)
        assert payload == {
            "hash": scenario.content_hash(),
            "received": 3,
            "added": 3,
            "rejected": 0,
        }
        status = client.submit(scenario)
        assert status.cached is True
        assert client.result(scenario.content_hash())["new_runs"] == 0

    def test_repeat_push_adds_nothing(self, tmp_path, client):
        scenario, runs = self._runs_from_session(tmp_path)
        assert client.push_runs(scenario, runs)["added"] == 3
        assert client.push_runs(scenario, runs)["added"] == 0

    def test_seed_invalid_runs_are_rejected_not_stored(self, tmp_path, client):
        from dataclasses import replace

        scenario, runs = self._runs_from_session(tmp_path)
        forged = [replace(runs[0], seed=runs[0].seed + 1)]
        payload = client.push_runs(scenario, forged)
        assert payload["added"] == 0
        assert payload["rejected"] == 1
        assert client.store_records() == []

    def test_hash_mismatch_is_400(self, tmp_path, client):
        from repro.service.wire import dump_results_body

        scenario, runs = self._runs_from_session(tmp_path)
        with pytest.raises(ServiceError) as excinfo:
            client._request(
                "/results/feedfacecafebeef",
                body=dump_results_body(scenario, runs),
                content_type="application/json",
            )
        assert excinfo.value.status == 400

    def test_malformed_body_is_400(self, client):
        scenario = Scenario.parse(SPEC)
        with pytest.raises(ServiceError) as excinfo:
            client._request(
                f"/results/{scenario.content_hash()}",
                body=b'{"not": "a results body"}',
                content_type="application/json",
            )
        assert excinfo.value.status == 400

    def test_storeless_server_is_409(self, tmp_path):
        storeless = create_server(port=0, store_dir=None, quiet=True)
        storeless.start_background()
        try:
            scenario, runs = self._runs_from_session(tmp_path)
            with pytest.raises(ServiceError) as excinfo:
                ServiceClient(storeless.url).push_runs(scenario, runs)
            assert excinfo.value.status == 409
        finally:
            storeless.close()


class TestSqliteBackedServer:
    def test_serves_and_ingests_with_sqlite_store(self, tmp_path):
        server = create_server(
            port=0, store_dir=f"sqlite:{tmp_path / 'store.db'}", quiet=True
        )
        server.start_background()
        client = ServiceClient(server.url)
        try:
            assert str(client.health()["store"]).startswith("sqlite:")
            first = client.submit(SPEC)
            client.wait(first.id, timeout=60.0)
            second = client.submit(SPEC)
            assert second.cached is True
            assert client.result(second.hash)["cached_runs"] == 3
        finally:
            server.close()


class TestDedupOverHttp:
    def test_second_submission_attaches_while_first_queued(self, tmp_path):
        """Deterministic dedup: no worker threads, so the first stays queued."""
        session = Session(store_dir=tmp_path / "store")
        jobs = JobManager(session, start=False)
        server = ReproServer(("127.0.0.1", 0), session, jobs, quiet=True)
        server.start_background()
        client = ServiceClient(server.url)
        try:
            first = client.submit(SPEC)
            second = client.submit(SPEC)
            assert second.deduplicated is True
            assert second.id == first.id
            jobs.process_next()
            assert client.job(first.id).state == JOB_DONE
        finally:
            server.shutdown()
            server.server_close()
