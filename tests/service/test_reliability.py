"""Unit tests for the fault-tolerance vocabulary: retry policy, journal,
fault injector, and the chaos store wrapper's spec grammar."""

from __future__ import annotations

import json
import random
import threading

import pytest

from repro.scenarios import ChaosStore, Scenario, open_store
from repro.scenarios.store_chaos import _split_chaos_spec
from repro.service.reliability import (
    DeadlineExceeded,
    FaultInjector,
    InjectedFault,
    JobCancelled,
    JobJournal,
    JournalEntry,
    Overloaded,
    RetryPolicy,
    SimulatedCrash,
    TransientError,
    journal_for_store,
)


def scenario(text: str = "one-fail-adaptive k=40 reps=3 seed=7") -> Scenario:
    return Scenario.parse(text)


class TestRetryPolicy:
    def test_classification(self):
        policy = RetryPolicy()
        assert policy.is_retryable(TransientError("hiccup"))
        assert policy.is_retryable(InjectedFault("append"))
        assert policy.is_retryable(ConnectionResetError("reset"))
        assert policy.is_retryable(TimeoutError())
        assert policy.is_retryable(OSError("disk"))
        assert not policy.is_retryable(ValueError("bad scenario"))
        assert not policy.is_retryable(RuntimeError("engine exploded"))

    def test_cancellation_is_never_retryable(self):
        # Even when the retryable tuple would otherwise match.
        policy = RetryPolicy(retryable_errors=(Exception,))
        assert not policy.is_retryable(JobCancelled("stop"))
        assert not policy.is_retryable(DeadlineExceeded("too late"))
        assert policy.is_retryable(ValueError("anything else"))

    def test_deterministic_delay_without_jitter(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=1.0, jitter=False)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)
        assert policy.delay(10) == pytest.approx(1.0)  # capped

    def test_full_jitter_stays_in_bounds(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=1.0, jitter=True)
        rng = random.Random(42)
        for attempt in range(1, 8):
            cap = min(1.0, 0.1 * 2 ** (attempt - 1))
            for _ in range(50):
                assert 0.0 <= policy.delay(attempt, rng) <= cap

    def test_call_retries_transients_then_succeeds(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientError("not yet")
            return "ok"

        slept = []
        policy = RetryPolicy(max_attempts=3, base_delay=0.01, jitter=False)
        assert policy.call(flaky, sleep=slept.append) == "ok"
        assert len(attempts) == 3
        assert len(slept) == 2

    def test_call_gives_up_after_max_attempts(self):
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=False)
        with pytest.raises(TransientError):
            policy.call(lambda: (_ for _ in ()).throw(TransientError("always")),
                        sleep=lambda _: None)

    def test_call_raises_terminal_errors_immediately(self):
        attempts = []

        def broken():
            attempts.append(1)
            raise ValueError("malformed")

        policy = RetryPolicy(max_attempts=5, base_delay=0.0)
        with pytest.raises(ValueError):
            policy.call(broken, sleep=lambda _: None)
        assert len(attempts) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)


class TestJobJournal:
    def test_record_mark_pending_cycle(self, tmp_path):
        journal = JobJournal(tmp_path / "jobs.journal")
        journal.record("job-1", scenario(), deadline=None)
        journal.record("job-2", scenario("one-fail-adaptive k=40 reps=2 seed=9"),
                       deadline=123.5)
        assert journal.backlog() == 2
        journal.mark("job-1", "done")
        pending = journal.pending()
        assert [entry.job_id for entry in pending] == ["job-2"]
        assert pending[0].deadline == 123.5
        assert Scenario.from_dict(pending[0].scenario) == scenario(
            "one-fail-adaptive k=40 reps=2 seed=9"
        )

    def test_reset_truncates(self, tmp_path):
        journal = JobJournal(tmp_path / "jobs.journal")
        journal.record("job-1", scenario())
        journal.reset()
        assert journal.pending() == []
        assert journal.backlog() == 0

    def test_missing_file_reads_as_empty(self, tmp_path):
        assert JobJournal(tmp_path / "never-written.journal").pending() == []

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "jobs.journal"
        journal = JobJournal(path)
        journal.record("job-1", scenario())
        journal.record("job-2", scenario())
        # Simulate a crash mid-append: the last line is torn.
        text = path.read_text(encoding="utf-8")
        lines = text.splitlines()
        path.write_text(lines[0] + "\n" + lines[1][: len(lines[1]) // 2],
                        encoding="utf-8")
        assert [entry.job_id for entry in journal.pending()] == ["job-1"]

    def test_garbage_lines_are_skipped(self, tmp_path):
        path = tmp_path / "jobs.journal"
        journal = JobJournal(path)
        journal.record("job-1", scenario())
        with path.open("a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write(json.dumps(["not", "a", "dict"]) + "\n")
            handle.write(json.dumps({"kind": "submit"}) + "\n")  # missing fields
        assert [entry.job_id for entry in journal.pending()] == ["job-1"]

    def test_record_entry_round_trips(self, tmp_path):
        journal = JobJournal(tmp_path / "jobs.journal")
        entry = JournalEntry(
            job_id="job-9", scenario=scenario().to_dict(), deadline=7.0,
            recorded_at=1.0,
        )
        journal.record_entry(entry)
        assert journal.pending() == [entry]

    def test_concurrent_appends_stay_line_atomic(self, tmp_path):
        journal = JobJournal(tmp_path / "jobs.journal")
        threads = [
            threading.Thread(
                target=lambda i=i: [journal.record(f"job-{i}-{j}", scenario())
                                    for j in range(20)]
            )
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert journal.backlog() == 80


class TestJournalForStore:
    def test_jsonl_store_gets_journal_in_root(self, tmp_path):
        store = open_store(tmp_path / "store")
        journal = journal_for_store(store)
        assert journal is not None
        assert journal.path == tmp_path / "store" / "jobs.journal"

    def test_sqlite_store_gets_sidecar_journal(self, tmp_path):
        store = open_store(f"sqlite:{tmp_path / 'results.db'}")
        journal = journal_for_store(store)
        assert journal is not None
        assert journal.path == tmp_path / "results.db.jobs.journal"

    def test_chaos_wrapper_delegates_to_inner(self, tmp_path):
        store = open_store(f"chaos:jsonl:{tmp_path / 'store'}?seed=1")
        journal = journal_for_store(store)
        assert journal is not None
        # The journal lands beside the *inner* store's data — it is the
        # recovery mechanism, never itself chaos-wrapped.
        assert journal.path == tmp_path / "store" / "jobs.journal"

    def test_none_for_no_store(self):
        assert journal_for_store(None) is None


class TestFaultInjector:
    def test_rate_one_always_fires_and_counts(self):
        injector = FaultInjector(seed=1, rates={"append": 1.0})
        with pytest.raises(InjectedFault) as info:
            injector.maybe_fail("append")
        assert info.value.kind == "append"
        assert injector.calls["append"] == 1
        assert injector.fired["append"] == 1

    def test_rate_zero_never_fires(self):
        injector = FaultInjector(seed=1)
        for _ in range(100):
            injector.maybe_fail("append")
        assert injector.fired["append"] == 0

    def test_skip_protects_early_calls(self):
        injector = FaultInjector(seed=1, rates={"append": 1.0}, skips={"append": 2})
        injector.maybe_fail("append")
        injector.maybe_fail("append")
        with pytest.raises(InjectedFault):
            injector.maybe_fail("append")

    def test_cap_guarantees_eventual_success(self):
        injector = FaultInjector(seed=1, rates={"append": 1.0}, caps={"append": 2})
        fails = 0
        for _ in range(10):
            try:
                injector.maybe_fail("append")
            except InjectedFault:
                fails += 1
        assert fails == 2

    def test_decisions_are_deterministic_per_seed(self):
        a = [FaultInjector(seed=7, rates={"load": 0.5}).roll("load") for _ in range(1)]
        rolls_a = FaultInjector(seed=7, rates={"load": 0.5})
        rolls_b = FaultInjector(seed=7, rates={"load": 0.5})
        assert [rolls_a.roll("load") for _ in range(50)] == [
            rolls_b.roll("load") for _ in range(50)
        ]
        assert a  # smoke: single-roll construction works too

    def test_kind_streams_are_independent(self):
        # Interleaving other kinds must not perturb a kind's decisions.
        solo = FaultInjector(seed=3, rates={"load": 0.5})
        solo_rolls = [solo.roll("load") for _ in range(20)]
        mixed = FaultInjector(seed=3, rates={"load": 0.5, "append": 0.5})
        mixed_rolls = []
        for _ in range(20):
            mixed.roll("append")
            mixed_rolls.append(mixed.roll("load"))
        assert solo_rolls == mixed_rolls

    def test_maybe_crash_raises_base_exception(self):
        injector = FaultInjector(seed=1, rates={"worker-crash": 1.0})
        with pytest.raises(SimulatedCrash):
            try:
                injector.maybe_crash()
            except Exception:  # noqa: BLE001 - the point: this must NOT catch
                pytest.fail("SimulatedCrash must not be swallowed by 'except Exception'")

    def test_maybe_delay_uses_injected_sleep(self):
        injector = FaultInjector(seed=1, delays={"slow": 0.25})
        slept = []
        injector.maybe_delay("slow", sleep=slept.append)
        assert slept == [0.25]
        injector.maybe_delay("other-kind", sleep=slept.append)
        assert slept == [0.25]


class TestChaosSpecGrammar:
    def test_plain_spec_has_no_chaos_params(self):
        assert _split_chaos_spec("jsonl:results/store") == ("jsonl:results/store", [])

    def test_trailing_chaos_params_split_off(self):
        inner, params = _split_chaos_spec("jsonl:store?seed=3&append_fail=0.5")
        assert inner == "jsonl:store"
        assert dict(params) == {"seed": "3", "append_fail": "0.5"}

    def test_inner_query_is_preserved(self):
        # sqlite's own ?ttl= options are not chaos keys: they stay inner.
        inner, params = _split_chaos_spec("sqlite:store.db?ttl=60?seed=1&load_fail=1")
        assert inner == "sqlite:store.db?ttl=60"
        assert dict(params) == {"seed": "1", "load_fail": "1"}

    def test_non_chaos_trailing_query_stays_inner(self):
        inner, params = _split_chaos_spec("sqlite:store.db?ttl=60")
        assert inner == "sqlite:store.db?ttl=60"
        assert params == []

    def test_bad_option_value_is_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="bad chaos option"):
            ChaosStore.from_spec(f"{tmp_path / 'store'}?seed=not-a-number")

    def test_nested_chaos_is_rejected(self, tmp_path):
        store = open_store(f"chaos:{tmp_path / 'store'}?seed=1")
        with pytest.raises(ValueError, match="do not nest"):
            ChaosStore(store)

    def test_describe_round_trips_through_open_store(self, tmp_path):
        spec = f"chaos:jsonl:{tmp_path / 'store'}?seed=5&append_fail=0.25"
        store = open_store(spec)
        reopened = open_store(store.describe())
        assert isinstance(reopened, ChaosStore)
        assert reopened.injector.seed == 5
        assert reopened.injector.rates == {"append": 0.25}


class TestOverloaded:
    def test_carries_retry_after(self):
        error = Overloaded("full", retry_after=3.5)
        assert error.retry_after == 3.5
        assert "full" in str(error)
