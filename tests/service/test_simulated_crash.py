"""SimulatedCrash must *propagate* — the reason it is a BaseException.

The chaos layer's worker-death fault only works if no recovery path can
swallow it: not the job-execution retry loop, not the retry policy, not the
HTTP handler's fault-to-500 mapping.  These are regression tests for the
exception-hygiene invariants the lint rules (EXC001-003) enforce statically.
"""

from __future__ import annotations

import urllib.error
import urllib.request

import pytest

from repro.scenarios.scenario import Scenario
from repro.scenarios.session import Session
from repro.service.jobs import JobManager
from repro.service.reliability import (
    FaultInjector,
    RetryPolicy,
    SimulatedCrash,
    journal_for_store,
)
from repro.service.server import ReproServer


def scenario(text: str = "one-fail-adaptive k=40 reps=2 seed=7") -> Scenario:
    return Scenario.parse(text)


class CrashingSession(Session):
    """A session whose run() dies like a killed process."""

    def run(self, *args, **kwargs):
        raise SimulatedCrash("mid-run crash")


class TestJobExecutionPath:
    def test_crash_propagates_through_process_next(self, tmp_path):
        """The retry loop's `except Exception` must not absorb the crash."""
        session = CrashingSession(store_dir=tmp_path / "store")
        manager = JobManager(
            session,
            start=False,
            journal=journal_for_store(session.store),
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.0),
            retry_sleep=lambda _d: None,
        )
        job, disposition = manager.submit(scenario())
        assert disposition == "queued"
        with pytest.raises(SimulatedCrash):
            manager.process_next()
        # Crashed exactly like a killed worker: no retry, no terminal state,
        # no journal mark — the entry stays pending for the next boot.
        assert job.attempts == 1
        assert job.state == "running"
        assert manager.lifetime_counts()["retried"] == 0
        assert [e.job_id for e in manager.journal.pending()] == [job.id]

    def test_worker_crash_hook_propagates_after_success(self, tmp_path):
        session = Session(store_dir=tmp_path / "store")
        manager = JobManager(
            session,
            start=False,
            journal=journal_for_store(session.store),
            fault_injector=FaultInjector(rates={"worker-crash": 1.0}),
        )
        manager.submit(scenario())
        with pytest.raises(SimulatedCrash):
            manager.process_next()
        # The results persisted before the crash; the journal entry did not
        # get its mark, so replay re-submits and dedups to the store.
        assert len(manager.journal.pending()) == 1

    def test_retry_policy_call_does_not_swallow_crash(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.0)
        attempts = []

        def crashes():
            attempts.append(1)
            raise SimulatedCrash("boom")

        with pytest.raises(SimulatedCrash):
            policy.call(crashes, sleep=lambda _d: None)
        assert len(attempts) == 1  # never retried: a crash is not transient


@pytest.mark.filterwarnings("ignore::pytest.PytestUnhandledThreadExceptionWarning")
class TestHttpHandlerPath:
    @pytest.fixture
    def crashing_server(self, tmp_path):
        """A live server whose fault injector crashes every HTTP roll."""
        session = Session(store_dir=tmp_path / "store")
        jobs = JobManager(session, start=False)

        class CrashInjector(FaultInjector):
            def maybe_fail(self, kind, message=None):
                if kind == "http-500":
                    raise SimulatedCrash("handler crash")

        server = ReproServer(
            ("127.0.0.1", 0), session, jobs, quiet=True,
            fault_injector=CrashInjector(),
        )
        server.start_background()
        yield server
        server.shutdown()
        server.server_close()

    def test_crash_is_not_mapped_to_a_500(self, crashing_server):
        """`_inject_http_fault` maps InjectedFault to a retryable 500; a
        SimulatedCrash must instead kill the handler thread (the client sees
        a dropped connection, exactly like a crashed server process)."""
        with pytest.raises((urllib.error.URLError, ConnectionError)):
            with urllib.request.urlopen(
                crashing_server.url + "/jobs", timeout=5
            ) as response:
                response.read()

    def test_healthz_stays_alive(self, crashing_server):
        """/healthz is exempt from HTTP chaos — it is how tests observe the
        server — so it must answer even while other routes crash."""
        with urllib.request.urlopen(
            crashing_server.url + "/healthz", timeout=5
        ) as response:
            assert response.status == 200
