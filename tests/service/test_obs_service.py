"""Observability through the service: /metrics, trace propagation, progress.

These tests read the process-wide :data:`repro.obs.REGISTRY`, which the whole
suite shares — every assertion is therefore a *delta* against a snapshot
taken at the start of the test, never an absolute count.
"""

from __future__ import annotations

import time
import urllib.request

import pytest

from repro.obs import (
    REGISTRY,
    enabled as obs_enabled,
    read_trace,
    set_enabled,
    tracing_sink,
)
from repro.service import JOB_DONE, ServiceClient, create_server
from repro.service.wire import JobStatus

SPEC = "one-fail-adaptive k=48 reps=3 seed=2011"


@pytest.fixture
def server(tmp_path):
    server = create_server(port=0, store_dir=tmp_path / "store", quiet=True)
    server.start_background()
    yield server
    server.close()
    # create_server(obs=True) enabled metrics and installed a trace sink
    # pointing into tmp_path; detach it so later tests don't write there.
    from repro.obs import configure_tracing

    configure_tracing(None)


@pytest.fixture
def client(server) -> ServiceClient:
    return ServiceClient(server.url, timeout=30.0)


def _http_get(url: str) -> tuple[int, str, str]:
    with urllib.request.urlopen(url, timeout=30.0) as response:
        return (
            response.status,
            response.headers.get("Content-Type", ""),
            response.read().decode("utf-8"),
        )


def _counter_value(name: str, **labels: str) -> float:
    family = REGISTRY.snapshot().get(name)
    if family is None:
        return 0.0
    key = (
        "{" + ",".join(f'{k}="{v}"' for k, v in labels.items()) + "}" if labels else ""
    )
    value = family["series"].get(key, 0.0)
    return float(value) if not isinstance(value, dict) else float(value["count"])


class TestMetricsEndpoint:
    def test_metrics_serves_prometheus_text(self, server, client):
        first = client.submit(SPEC)
        client.wait(first.id, timeout=60.0)
        status, content_type, text = _http_get(server.url + "/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        # One family per instrumented layer: http, jobs, session, store, engine.
        for family in (
            "repro_http_requests_total",
            "repro_jobs_submitted_total",
            "repro_session_cache_lookups_total",
            "repro_store_append_seconds",
            "repro_engine_runs_total",
        ):
            assert f"# TYPE {family}" in text, f"missing family {family}"
        # The scrape itself is typed and help-ed Prometheus text.
        assert "# HELP repro_http_requests_total" in text

    def test_request_metrics_count_routes_and_statuses(self, server, client):
        before = _counter_value(
            "repro_http_requests_total", method="GET", route="/healthz", status="200"
        )
        client.health()
        client.health()
        # The handler thread increments *after* flushing the response, so the
        # last request's sample can trail the client return by a beat.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            after = _counter_value(
                "repro_http_requests_total", method="GET", route="/healthz", status="200"
            )
            if after - before >= 2:
                break
            time.sleep(0.01)
        assert after - before == 2

    def test_job_metrics_move_through_lifecycle(self, client):
        submitted = _counter_value("repro_jobs_submitted_total", disposition="queued")
        finished = _counter_value("repro_jobs_finished_total", state="done")
        status = client.submit(SPEC)
        status = client.wait(status.id, timeout=60.0)
        assert status.state == JOB_DONE
        assert (
            _counter_value("repro_jobs_submitted_total", disposition="queued")
            - submitted
            == 1
        )
        assert _counter_value("repro_jobs_finished_total", state="done") - finished == 1

    def test_healthz_carries_metrics_summary(self, client):
        payload = client.health()
        summary = payload["metrics"]
        assert summary["enabled"] is True
        assert summary["families"] > 0

    def test_no_obs_server_freezes_counters(self, tmp_path):
        server = create_server(
            port=0, store_dir=tmp_path / "store2", quiet=True, obs=False
        )
        server.start_background()
        try:
            assert not obs_enabled()
            assert tracing_sink() is None
            client = ServiceClient(server.url, timeout=30.0)
            before = _counter_value(
                "repro_http_requests_total", method="GET", route="/healthz", status="200"
            )
            client.health()
            after = _counter_value(
                "repro_http_requests_total", method="GET", route="/healthz", status="200"
            )
            assert after == before
            # /metrics still answers (families render, values frozen).
            status, _, text = _http_get(server.url + "/metrics")
            assert status == 200 and "# TYPE" in text
        finally:
            server.close()
            set_enabled(True)


class TestTracePropagation:
    def test_one_trace_spans_http_to_store(self, tmp_path, server, client):
        status = client.submit(SPEC)
        status = client.wait(status.id, timeout=60.0)
        assert status.state == JOB_DONE
        trace_path = tmp_path / "store" / "trace.jsonl"
        assert trace_path.is_file(), "serve must write the trace log beside the store"
        events = read_trace(trace_path)
        # The submit request's trace must cover every layer end to end.
        job_runs = [ev for ev in events if ev.name == "job.run"]
        assert job_runs, "worker must record a job.run span"
        trace = job_runs[0].trace
        stages = {ev.name for ev in events if ev.trace == trace}
        assert {
            "http.request",
            "job.run",
            "job.attempt",
            "session.plan",
            "engine.megabatch",
            "store.append",
        } <= stages
        # The HTTP span and the worker spans agree on the trace id even
        # though they ran on different threads.
        http_spans = [
            ev for ev in events if ev.trace == trace and ev.name == "http.request"
        ]
        assert http_spans and http_spans[0].attrs.get("route") == "/scenarios"

    def test_distinct_submissions_get_distinct_traces(self, tmp_path, client):
        first = client.submit("one-fail-adaptive k=32 reps=2 seed=1")
        client.wait(first.id, timeout=60.0)
        second = client.submit("one-fail-adaptive k=32 reps=2 seed=2")
        client.wait(second.id, timeout=60.0)
        events = read_trace(tmp_path / "store" / "trace.jsonl")
        traces = {ev.trace for ev in events if ev.name == "job.run"}
        assert len(traces) == 2


class TestWaitProgress:
    def test_on_progress_sees_changes_and_final_state(self, client):
        seen: list[JobStatus] = []
        status = client.submit(SPEC)
        status = client.wait(status.id, timeout=60.0, on_progress=seen.append)
        assert status.state == JOB_DONE
        assert seen, "at least the final status must be reported"
        assert seen[-1].finished and seen[-1].done == 3
        # No duplicate (state, done) pairs: the callback only fires on change.
        pairs = [(s.state, s.done) for s in seen]
        assert len(pairs) == len(set(pairs))

    def test_wait_without_callback_unchanged(self, client):
        status = client.submit(SPEC)
        assert client.wait(status.id, timeout=60.0).state == JOB_DONE
