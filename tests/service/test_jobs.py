"""Unit tests for the job-queue layer: dedup, FIFO order, cached fast path."""

from __future__ import annotations

import pytest

from repro.scenarios import Scenario, Session
from repro.service import JOB_DONE, JOB_FAILED, JOB_QUEUED, JobManager


def scenario(text: str = "one-fail-adaptive k=40 reps=3 seed=7") -> Scenario:
    return Scenario.parse(text)


@pytest.fixture
def manager(tmp_path) -> JobManager:
    """A manager without worker threads: jobs only run via process_next,
    so intermediate queue states are observable deterministically."""
    return JobManager(Session(store_dir=tmp_path / "store"), start=False)


class TestSubmission:
    def test_fresh_scenario_queues(self, manager):
        job, disposition = manager.submit(scenario())
        assert disposition == "queued"
        assert job.state == JOB_QUEUED
        assert job.total == 3
        assert manager.counts()[JOB_QUEUED] == 1

    def test_fifo_execution_order(self, manager):
        first, _ = manager.submit(scenario("one-fail-adaptive k=40 reps=2 seed=1"))
        second, _ = manager.submit(scenario("one-fail-adaptive k=40 reps=2 seed=2"))
        third, _ = manager.submit(scenario("one-fail-adaptive k=40 reps=2 seed=3"))
        assert [manager.process_next() for _ in range(3)] == [first, second, third]
        assert manager.process_next() is None
        assert all(job.state == JOB_DONE for job in (first, second, third))

    def test_completed_job_carries_result_set(self, manager):
        job, _ = manager.submit(scenario())
        manager.process_next()
        assert job.state == JOB_DONE
        assert job.done == job.total == 3
        assert job.result_set is not None
        assert job.result_set.new_runs == 3
        assert job.finished.is_set()

    def test_job_ids_are_unique_and_lookup_works(self, manager):
        job_a, _ = manager.submit(scenario("one-fail-adaptive k=40 reps=2 seed=1"))
        job_b, _ = manager.submit(scenario("one-fail-adaptive k=40 reps=2 seed=2"))
        assert job_a.id != job_b.id
        assert manager.get(job_a.id) is job_a
        assert manager.get("job-999") is None
        with pytest.raises(KeyError):
            manager.wait("job-999")


class TestDedup:
    def test_identical_submissions_attach_to_inflight_job(self, manager):
        job, _ = manager.submit(scenario())
        duplicate, disposition = manager.submit(scenario())
        assert disposition == "deduplicated"
        assert duplicate is job
        assert manager.counts()[JOB_QUEUED] == 1

    def test_dedup_covers_fewer_replications(self, manager):
        job, _ = manager.submit(scenario("one-fail-adaptive k=40 reps=3 seed=7"))
        duplicate, disposition = manager.submit(scenario("one-fail-adaptive k=40 reps=2 seed=7"))
        assert disposition == "deduplicated"
        assert duplicate is job

    def test_more_replications_is_a_new_job(self, manager):
        job, _ = manager.submit(scenario("one-fail-adaptive k=40 reps=3 seed=7"))
        bigger, disposition = manager.submit(scenario("one-fail-adaptive k=40 reps=5 seed=7"))
        assert disposition == "queued"
        assert bigger is not job

    def test_different_scenarios_do_not_dedup(self, manager):
        manager.submit(scenario("one-fail-adaptive k=40 reps=2 seed=1"))
        _, disposition = manager.submit(scenario("one-fail-adaptive k=40 reps=2 seed=2"))
        assert disposition == "queued"
        assert manager.counts()[JOB_QUEUED] == 2

    def test_completed_job_no_longer_absorbs_submissions(self, manager):
        manager.submit(scenario())
        manager.process_next()
        # Re-submission after completion is served from the store instead.
        job, disposition = manager.submit(scenario())
        assert disposition == "cached"
        assert job.state == JOB_DONE


class TestCachedFastPath:
    def test_stored_scenario_answers_synchronously(self, manager):
        manager.submit(scenario())
        manager.process_next()
        job, disposition = manager.submit(scenario())
        assert disposition == "cached"
        assert job.cached
        assert job.state == JOB_DONE
        assert job.result_set.new_runs == 0
        assert job.result_set.cached_runs == 3
        # The cached path never touches the queue.
        assert manager.counts()[JOB_QUEUED] == 0
        assert manager.process_next() is None

    def test_store_less_session_never_reports_cached(self):
        manager = JobManager(Session(), start=False)
        manager.submit(scenario())
        manager.process_next()
        _, disposition = manager.submit(scenario())
        assert disposition == "queued"

    def test_snapshot_is_wire_ready(self, manager):
        manager.submit(scenario())
        manager.process_next()
        job, _ = manager.submit(scenario())
        snapshot = job.snapshot()
        assert snapshot["state"] == JOB_DONE
        assert snapshot["cached"] is True
        assert snapshot["done"] == snapshot["total"] == 3
        assert snapshot["hash"] == scenario().content_hash()
        assert snapshot["scenario"] == scenario().format()


class TestFailuresAndWorkers:
    def test_failed_job_records_error_and_frees_hash(self, manager, monkeypatch):
        def explode(*_args, **_kwargs):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr(manager.session, "run", explode)
        job, _ = manager.submit(scenario())
        manager.process_next()
        assert job.state == JOB_FAILED
        assert "engine exploded" in job.error
        assert job.finished.is_set()
        # The hash is no longer in flight: a new submission queues fresh.
        monkeypatch.undo()
        retry, disposition = manager.submit(scenario())
        assert disposition == "queued"
        assert retry is not job

    def test_worker_threads_drain_the_queue(self, tmp_path):
        manager = JobManager(Session(store_dir=tmp_path / "store"), workers=2)
        try:
            jobs = [
                manager.submit(scenario(f"one-fail-adaptive k=40 reps=2 seed={seed}"))[0]
                for seed in range(4)
            ]
            for job in jobs:
                finished = manager.wait(job.id, timeout=60.0)
                assert finished.state == JOB_DONE
        finally:
            manager.shutdown()

    def test_result_for_hash_returns_latest_completed(self, manager):
        job, _ = manager.submit(scenario())
        assert manager.result_for_hash(job.content_hash) is None
        manager.process_next()
        assert manager.result_for_hash(job.content_hash) is job.result_set
        assert manager.result_for_hash("no-such-hash") is None

    def test_rejects_non_positive_workers(self):
        with pytest.raises(ValueError):
            JobManager(Session(), workers=0)
        with pytest.raises(ValueError):
            JobManager(Session(), max_finished=0)


class TestRetention:
    def test_finished_jobs_evicted_beyond_max_finished(self, tmp_path):
        manager = JobManager(Session(store_dir=tmp_path / "store"), start=False, max_finished=2)
        jobs = []
        for seed in range(4):
            job, _ = manager.submit(scenario(f"one-fail-adaptive k=40 reps=2 seed={seed}"))
            manager.process_next()
            jobs.append(job)
        # Only the two most recently finished jobs remain addressable.
        assert manager.get(jobs[0].id) is None
        assert manager.get(jobs[1].id) is None
        assert manager.get(jobs[2].id) is jobs[2]
        assert manager.get(jobs[3].id) is jobs[3]
        # Evicted results are still served from the store (cached path).
        replay, disposition = manager.submit(
            scenario("one-fail-adaptive k=40 reps=2 seed=0")
        )
        assert disposition == "cached"
        assert replay.result_set.new_runs == 0

    def test_cached_submissions_count_against_retention(self, tmp_path):
        manager = JobManager(Session(store_dir=tmp_path / "store"), start=False, max_finished=3)
        manager.submit(scenario())
        manager.process_next()
        for _ in range(10):
            job, disposition = manager.submit(scenario())
            assert disposition == "cached"
        assert len(manager.jobs()) == 3

    def test_queued_jobs_never_evicted(self, tmp_path):
        manager = JobManager(Session(store_dir=tmp_path / "store"), start=False, max_finished=1)
        first, _ = manager.submit(scenario("one-fail-adaptive k=40 reps=2 seed=1"))
        second, _ = manager.submit(scenario("one-fail-adaptive k=40 reps=2 seed=2"))
        still_queued, _ = manager.submit(scenario("one-fail-adaptive k=40 reps=2 seed=3"))
        manager.process_next()
        manager.process_next()  # first finishes, then second evicts it
        assert manager.get(first.id) is None
        assert manager.get(second.id) is second
        # Eviction only ever touches *finished* jobs: the queued one survives.
        assert manager.get(still_queued.id) is still_queued
        assert still_queued.state == JOB_QUEUED
