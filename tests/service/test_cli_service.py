"""CLI tests for the service subcommands: ``serve`` wiring, ``submit``, ``store``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.scenarios import Scenario, Session
from repro.service import create_server

SPEC = "one-fail-adaptive k=48 reps=3 seed=11"


@pytest.fixture
def server(tmp_path):
    server = create_server(port=0, store_dir=tmp_path / "store", quiet=True)
    server.start_background()
    yield server
    server.close()


class TestSubmitCommand:
    def test_submit_round_trip(self, capsys, server):
        assert main(["submit", SPEC, "--url", server.url]) == 0
        output = capsys.readouterr().out
        assert "new runs" in output
        assert Scenario.parse(SPEC).content_hash() in output

    def test_resubmit_reports_cached_json(self, capsys, server):
        assert main(["submit", SPEC, "--url", server.url, "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["cached"] is False
        assert first["new_runs"] == 3
        assert main(["submit", SPEC, "--url", server.url, "--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["cached"] is True
        assert second["new_runs"] == 0
        assert second["cached_runs"] == 3

    def test_no_wait_prints_job_id(self, capsys, server):
        assert main(["submit", SPEC, "--url", server.url, "--no-wait", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["job_id"].startswith("job-")
        assert payload["hash"] == Scenario.parse(SPEC).content_hash()

    def test_overrides_apply_before_submission(self, capsys, server):
        assert main(["submit", SPEC, "--url", server.url, "--reps", "2", "--seed", "99",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["results"]) == 2
        assert payload["scenario"]["seed"] == 99

    def test_unreachable_server_is_clean_error(self, capsys):
        assert main(["submit", SPEC, "--url", "http://127.0.0.1:9", "--timeout", "2"]) == 2
        assert "service error" in capsys.readouterr().err

    def test_bad_spec_is_clean_error(self, capsys, server):
        assert main(["submit", "no-such-protocol k=10", "--url", server.url]) == 2
        assert "error" in capsys.readouterr().err


class TestStoreCommand:
    def test_lists_scenarios_on_record(self, capsys, tmp_path):
        store_dir = tmp_path / "store"
        Session(store_dir=store_dir).run(Scenario.parse(SPEC))
        assert main(["store", str(store_dir)]) == 0
        output = capsys.readouterr().out
        assert Scenario.parse(SPEC).content_hash() in output
        assert "3/3" in output

    def test_json_records(self, capsys, tmp_path):
        store_dir = tmp_path / "store"
        Session(store_dir=store_dir).run(Scenario.parse(SPEC))
        assert main(["store", str(store_dir), "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert records[0]["hash"] == Scenario.parse(SPEC).content_hash()
        assert records[0]["solved_fraction"] == 1.0

    def test_empty_store_directory(self, capsys, tmp_path):
        assert main(["store", str(tmp_path)]) == 0
        assert "no scenarios on record" in capsys.readouterr().out

    def test_missing_directory_is_clean_error(self, capsys, tmp_path):
        assert main(["store", str(tmp_path / "absent")]) == 2
        assert "does not exist" in capsys.readouterr().err


class TestServeParser:
    def test_serve_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--port", "0", "--store", "s", "--job-workers", "2", "--no-batch"]
        )
        assert args.port == 0
        assert args.job_workers == 2
        assert args.batch is False
        assert args.func.__name__ == "_cmd_serve"
