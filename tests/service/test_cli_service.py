"""CLI tests for the service subcommands: ``serve`` wiring, ``submit``, ``store``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.scenarios import Scenario, Session
from repro.service import create_server

SPEC = "one-fail-adaptive k=48 reps=3 seed=11"


@pytest.fixture
def server(tmp_path):
    server = create_server(port=0, store_dir=tmp_path / "store", quiet=True)
    server.start_background()
    yield server
    server.close()


class TestSubmitCommand:
    def test_submit_round_trip(self, capsys, server):
        assert main(["submit", SPEC, "--url", server.url]) == 0
        output = capsys.readouterr().out
        assert "new runs" in output
        assert Scenario.parse(SPEC).content_hash() in output

    def test_resubmit_reports_cached_json(self, capsys, server):
        assert main(["submit", SPEC, "--url", server.url, "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["cached"] is False
        assert first["new_runs"] == 3
        assert main(["submit", SPEC, "--url", server.url, "--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["cached"] is True
        assert second["new_runs"] == 0
        assert second["cached_runs"] == 3

    def test_no_wait_prints_job_id(self, capsys, server):
        assert main(["submit", SPEC, "--url", server.url, "--no-wait", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["job_id"].startswith("job-")
        assert payload["hash"] == Scenario.parse(SPEC).content_hash()

    def test_overrides_apply_before_submission(self, capsys, server):
        assert main(["submit", SPEC, "--url", server.url, "--reps", "2", "--seed", "99",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["results"]) == 2
        assert payload["scenario"]["seed"] == 99

    def test_unreachable_server_is_clean_error(self, capsys):
        assert main(["submit", SPEC, "--url", "http://127.0.0.1:9", "--timeout", "2"]) == 2
        assert "service error" in capsys.readouterr().err

    def test_bad_spec_is_clean_error(self, capsys, server):
        assert main(["submit", "no-such-protocol k=10", "--url", server.url]) == 2
        assert "error" in capsys.readouterr().err


class TestStoreCommand:
    def test_lists_scenarios_on_record(self, capsys, tmp_path):
        store_dir = tmp_path / "store"
        Session(store_dir=store_dir).run(Scenario.parse(SPEC))
        assert main(["store", str(store_dir)]) == 0
        output = capsys.readouterr().out
        assert Scenario.parse(SPEC).content_hash() in output
        assert "3/3" in output

    def test_json_records(self, capsys, tmp_path):
        store_dir = tmp_path / "store"
        Session(store_dir=store_dir).run(Scenario.parse(SPEC))
        assert main(["store", str(store_dir), "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert records[0]["hash"] == Scenario.parse(SPEC).content_hash()
        assert records[0]["solved_fraction"] == 1.0

    def test_empty_store_directory(self, capsys, tmp_path):
        assert main(["store", str(tmp_path)]) == 0
        assert "no scenarios on record" in capsys.readouterr().out

    def test_missing_directory_is_clean_error(self, capsys, tmp_path):
        assert main(["store", str(tmp_path / "absent")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_lists_sqlite_store_via_spec(self, capsys, tmp_path):
        spec = f"sqlite:{tmp_path / 'store.db'}"
        Session(store_dir=spec).run(Scenario.parse(SPEC))
        assert main(["store", spec]) == 0
        output = capsys.readouterr().out
        assert Scenario.parse(SPEC).content_hash() in output
        assert "3/3" in output

    def test_missing_sqlite_store_is_clean_error(self, capsys, tmp_path):
        assert main(["store", f"sqlite:{tmp_path / 'absent.db'}"]) == 2
        assert "does not exist" in capsys.readouterr().err


class TestStoreMigrateCommand:
    def test_migrate_jsonl_to_sqlite_then_serves_cached(self, capsys, tmp_path):
        src = tmp_path / "src"
        dst = f"sqlite:{tmp_path / 'dst.db'}"
        Session(store_dir=src).run(Scenario.parse(SPEC))
        assert main(["store", "migrate", str(src), dst]) == 0
        assert "migrated 3 replication(s) across 1 scenario(s)" in capsys.readouterr().out
        # The migrated store serves the scenario with zero new simulations.
        assert main(["run", SPEC, "--store", dst, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["new_runs"] == 0
        assert payload["cached_runs"] == 3

    def test_migrate_is_idempotent(self, capsys, tmp_path):
        src = tmp_path / "src"
        dst = f"sqlite:{tmp_path / 'dst.db'}"
        Session(store_dir=src).run(Scenario.parse(SPEC))
        assert main(["store", "migrate", str(src), dst, "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(["store", "migrate", str(src), dst, "--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert first["replications_copied"] == 3
        assert second["replications_copied"] == 0

    def test_migrate_cleans_lock_sidecars(self, capsys, tmp_path):
        src = tmp_path / "src"
        Session(store_dir=src).run(Scenario.parse(SPEC))
        assert list(src.glob("*.jsonl.lock"))
        assert main(["store", "migrate", str(src), f"sqlite:{tmp_path / 'dst.db'}"]) == 0
        assert not list(src.glob("*.jsonl.lock"))

    def test_migrate_missing_source_is_clean_error(self, capsys, tmp_path):
        assert main(["store", "migrate", str(tmp_path / "absent"), str(tmp_path / "d")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_migrate_usage_error(self, capsys, tmp_path):
        assert main(["store", "migrate", str(tmp_path)]) == 2
        assert "usage" in capsys.readouterr().err

    def test_migrate_to_running_server(self, capsys, tmp_path, server):
        src = tmp_path / "src"
        Session(store_dir=src).run(Scenario.parse(SPEC))
        assert main(["store", "migrate", str(src), server.url]) == 0
        assert "migrated 3 replication(s)" in capsys.readouterr().out
        assert main(["submit", SPEC, "--url", server.url, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cached"] is True
        assert payload["new_runs"] == 0


class TestStoreCompactCommand:
    def test_compact_reports_and_preserves(self, capsys, tmp_path):
        store_dir = tmp_path / "store"
        Session(store_dir=store_dir).run(Scenario.parse(SPEC))
        assert main(["store", "compact", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "compacted 1 scenario(s)" in out
        assert "1 lock file(s) removed" in out
        assert main(["run", SPEC, "--store", str(store_dir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["new_runs"] == 0


class TestRunWithSqliteStore:
    def test_run_resumes_from_sqlite_spec(self, capsys, tmp_path):
        spec = f"sqlite:{tmp_path / 'results.db'}"
        assert main(["run", SPEC, "--store", spec, "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["new_runs"] == 3
        assert main(["run", SPEC, "--store", spec, "--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["new_runs"] == 0
        assert second["cached_runs"] == 3


class TestServeParser:
    def test_serve_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--port", "0", "--store", "s", "--job-workers", "2", "--no-batch"]
        )
        assert args.port == 0
        assert args.job_workers == 2
        assert args.batch is False
        assert args.func.__name__ == "_cmd_serve"
