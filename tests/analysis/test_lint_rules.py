"""Fixture-driven rule tests: one violating and one conforming snippet per rule."""

from __future__ import annotations

import textwrap

from repro.analysis.core import run_lint


def lint_snippet(tmp_path, relpath, source, rules):
    """Lint one fixture file written at ``relpath`` (scoped rules key off the
    ``repro/...`` path components) and return the findings."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return run_lint([path], rules=rules, root=tmp_path).findings


class TestGlobalRandomnessRule:
    def test_stdlib_random_flagged_in_engine_scope(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/engine/fake.py",
            """
            import random

            def draw():
                return random.random()
            """,
            ["RND001"],
        )
        assert [f.rule for f in findings] == ["RND001"]
        assert "random.random" in findings[0].message

    def test_import_alias_is_resolved(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/protocols/fake.py",
            """
            import random as rnd

            def draw():
                return rnd.randint(0, 1)
            """,
            ["RND001"],
        )
        assert len(findings) == 1

    def test_legacy_numpy_global_api_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/channel/fake.py",
            """
            import numpy as np

            def draw():
                return np.random.randint(0, 2)
            """,
            ["RND001"],
        )
        assert len(findings) == 1 and "np.random.randint" in findings[0].message

    def test_argless_default_rng_flagged_but_seeded_ok(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/core/fake.py",
            """
            from numpy.random import default_rng

            def bad():
                return default_rng()

            def good(seed):
                return default_rng(seed)
            """,
            ["RND001"],
        )
        assert len(findings) == 1 and "argless" in findings[0].message

    def test_injected_generator_is_clean(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/engine/fake.py",
            """
            def draw(rng):
                return rng.integers(0, 2)
            """,
            ["RND001"],
        )
        assert findings == ()

    def test_out_of_scope_module_not_checked(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/experiments/fake.py",
            """
            import random

            def draw():
                return random.random()
            """,
            ["RND001"],
        )
        assert findings == ()


class TestClockDisciplineRule:
    def test_time_time_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/service/fake.py",
            """
            import time

            def deadline(seconds):
                return time.time() + seconds
            """,
            ["CLK001"],
        )
        assert [f.rule for f in findings] == ["CLK001"]

    def test_monotonic_is_clean(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/service/fake.py",
            """
            import time

            def deadline(seconds):
                return time.monotonic() + seconds
            """,
            ["CLK001"],
        )
        assert findings == ()

    def test_marked_wall_clock_metadata_is_allowed(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/service/fake.py",
            """
            import time

            def stamp():
                return time.time()  # repro: noqa[CLK001] - wall-clock metadata
            """,
            ["CLK001"],
        )
        assert findings == ()


LOCKED_CLASS = (
    "import threading\n"
    "\n"
    "class Manager:\n"
    '    _lock_guarded = frozenset({"_jobs"})\n'
    "\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "        self._cond = threading.Condition(self._lock)\n"
    "        self._jobs = {}\n"
    "\n"
    "    def %s"
)


class TestLockDisciplineRule:
    def write(self, tmp_path, method):
        return lint_snippet(
            tmp_path, "repro/service/fake.py", LOCKED_CLASS % method, ["LCK001"]
        )

    def test_unlocked_write_flagged(self, tmp_path):
        findings = self.write(
            tmp_path,
            "add(self, job):\n        self._jobs[job] = 1\n",
        )
        assert len(findings) == 1 and "_jobs" in findings[0].message

    def test_unlocked_mutator_call_flagged(self, tmp_path):
        findings = self.write(
            tmp_path,
            "clear_all(self):\n        self._jobs.clear()\n",
        )
        assert len(findings) == 1 and ".clear()" in findings[0].message

    def test_write_under_lock_is_clean(self, tmp_path):
        findings = self.write(
            tmp_path,
            "add(self, job):\n        with self._lock:\n            self._jobs[job] = 1\n",
        )
        assert findings == ()

    def test_condition_aliases_its_lock(self, tmp_path):
        findings = self.write(
            tmp_path,
            "add(self, job):\n        with self._cond:\n            self._jobs[job] = 1\n",
        )
        assert findings == ()

    def test_nested_function_does_not_inherit_the_lock(self, tmp_path):
        findings = self.write(
            tmp_path,
            "add(self, job):\n"
            "        with self._lock:\n"
            "            def later():\n"
            "                self._jobs[job] = 1\n"
            "            return later\n",
        )
        assert len(findings) == 1

    def test_lock_held_docstring_exempts_helper(self, tmp_path):
        findings = self.write(
            tmp_path,
            'add(self, job):\n        """The manager lock must be held."""\n'
            "        self._jobs[job] = 1\n",
        )
        assert findings == ()

    def test_locked_suffix_exempts_helper(self, tmp_path):
        findings = self.write(
            tmp_path,
            "add_locked(self, job):\n        self._jobs[job] = 1\n",
        )
        assert findings == ()

    def test_init_is_exempt(self, tmp_path):
        # LOCKED_CLASS's __init__ itself assigns self._jobs unlocked.
        findings = self.write(tmp_path, "noop(self):\n        pass\n")
        assert findings == ()

    def test_undeclared_class_is_not_checked(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/service/fake.py",
            """
            import threading

            class Plain:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._jobs = {}

                def add(self, job):
                    self._jobs[job] = 1
            """,
            ["LCK001"],
        )
        assert findings == ()


class TestLockOrderRule:
    def test_order_inversion_reported_from_finish_pass(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/service/fake.py",
            """
            import threading

            _a = threading.Lock()
            _b = threading.Lock()

            def one():
                with _a:
                    with _b:
                        pass

            def two():
                with _b:
                    with _a:
                        pass
            """,
            ["LCK002"],
        )
        assert [f.rule for f in findings] == ["LCK002"]
        assert "inversion" in findings[0].message

    def test_class_lock_inversion_across_modules(self, tmp_path):
        # The graph is keyed by ClassName.lock, so methods of the same class
        # split across modules still collide.
        template = (
            "import threading\n"
            "class Manager:\n"
            "    def __init__(self):\n"
            "        self._a = threading.Lock()\n"
            "        self._b = threading.Lock()\n"
            "    def run(self):\n"
            "        with self.%s:\n"
            "            with self.%s:\n"
            "                pass\n"
        )
        for name, order in (("first", ("_a", "_b")), ("second", ("_b", "_a"))):
            path = tmp_path / f"repro/service/{name}.py"
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(template % order, encoding="utf-8")
        findings = run_lint([tmp_path], rules=["LCK002"], root=tmp_path).findings
        assert [f.rule for f in findings] == ["LCK002"]
        assert "inversion" in findings[0].message

    def test_consistent_order_is_clean(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/service/fake.py",
            """
            import threading

            _a = threading.Lock()
            _b = threading.Lock()

            def one():
                with _a:
                    with _b:
                        pass

            def two():
                with _a:
                    with _b:
                        pass
            """,
            ["LCK002"],
        )
        assert findings == ()

    def test_reentrant_reacquisition_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/service/fake.py",
            """
            import threading

            _a = threading.Lock()

            def run():
                with _a:
                    with _a:
                        pass
            """,
            ["LCK002"],
        )
        assert len(findings) == 1 and "re-acquisition" in findings[0].message


class TestExceptionRules:
    def test_bare_except_flagged_everywhere(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/util/fake.py",
            """
            def run():
                try:
                    pass
                except:
                    pass
            """,
            ["EXC001"],
        )
        assert [f.rule for f in findings] == ["EXC001"]

    def test_baseexception_swallow_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/util/fake.py",
            """
            def run():
                try:
                    pass
                except BaseException:
                    pass
            """,
            ["EXC002"],
        )
        assert [f.rule for f in findings] == ["EXC002"]

    def test_baseexception_with_reraise_is_clean(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/util/fake.py",
            """
            def run(conn):
                try:
                    pass
                except BaseException:
                    conn.rollback()
                    raise
            """,
            ["EXC002"],
        )
        assert findings == ()

    def test_raise_in_nested_function_does_not_count(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/util/fake.py",
            """
            def run():
                try:
                    pass
                except BaseException:
                    def later():
                        raise ValueError("not a re-raise of ours")
                    later()
            """,
            ["EXC002"],
        )
        assert len(findings) == 1

    def test_broad_except_flagged_in_fault_injected_scope(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/service/fake.py",
            """
            def run():
                try:
                    pass
                except Exception:
                    pass
            """,
            ["EXC003"],
        )
        assert [f.rule for f in findings] == ["EXC003"]

    def test_broad_except_out_of_scope_is_clean(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/experiments/fake.py",
            """
            def run():
                try:
                    pass
                except Exception:
                    pass
            """,
            ["EXC003"],
        )
        assert findings == ()

    def test_ble001_marker_justifies_broad_except(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/service/fake.py",
            """
            def run():
                try:
                    pass
                except Exception:  # noqa: BLE001 - probe failure = miss
                    pass
            """,
            ["EXC003"],
        )
        assert findings == ()

    def test_reraising_broad_except_is_clean(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/service/fake.py",
            """
            def run(log):
                try:
                    pass
                except Exception as error:
                    log.warning("%s", error)
                    raise
            """,
            ["EXC003"],
        )
        assert findings == ()


class TestAnnotationRules:
    def test_missing_future_import_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/util/fake.py",
            """
            def run():
                pass
            """,
            ["ANN001"],
        )
        assert [f.rule for f in findings] == ["ANN001"]

    def test_future_import_present_is_clean(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/util/fake.py",
            """
            from __future__ import annotations

            def run():
                pass
            """,
            ["ANN001"],
        )
        assert findings == ()

    def test_module_defining_nothing_is_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "repro/util/fake.py", "VERSION = 1\n", ["ANN001"]
        )
        assert findings == ()

    def test_unannotated_public_function_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/util/fake.py",
            """
            def run(value) -> None:
                pass

            def also(value: int):
                pass
            """,
            ["ANN002"],
        )
        assert len(findings) == 2
        assert "unannotated parameter" in findings[0].message
        assert "return annotation" in findings[1].message

    def test_private_helpers_and_method_self_are_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/util/fake.py",
            """
            def _helper(value):
                pass

            class Public:
                def method(self, value: int) -> None:
                    pass

                def __repr__(self):
                    return "Public()"

            class _Private:
                def method(self, value):
                    pass
            """,
            ["ANN002"],
        )
        assert findings == ()
