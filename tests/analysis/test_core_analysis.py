"""Tests for the paper's closed-form expressions (Theorems 1-2, Lemma 1, Table 1)."""

from __future__ import annotations

import math

import pytest

from repro.core import analysis
from repro.core.constants import (
    EBB_DELTA_DEFAULT,
    OFA_DELTA_DEFAULT,
    OFA_DELTA_MAX,
    ofa_delta_upper_bound,
)


class TestConstants:
    def test_ofa_delta_upper_bound_value(self):
        assert ofa_delta_upper_bound() == pytest.approx(2.9906, abs=1e-3)

    def test_papers_deltas_are_admissible(self):
        assert math.e < OFA_DELTA_DEFAULT <= OFA_DELTA_MAX
        assert 0 < EBB_DELTA_DEFAULT < 1 / math.e


class TestOneFailAdaptiveAnalysis:
    def test_leading_constant_matches_table1(self):
        """Table 1's Analysis column reports 7.4 for One-fail Adaptive."""
        assert analysis.ofa_leading_constant(2.72) == pytest.approx(7.44)

    def test_makespan_bound_dominated_by_linear_term(self):
        k = 10**6
        bound = analysis.ofa_makespan_bound(k)
        assert bound == pytest.approx(7.44 * k, rel=1e-3)

    def test_makespan_bound_additive_term_visible_at_small_k(self):
        assert analysis.ofa_makespan_bound(4, log_square_constant=100.0) > 7.44 * 4

    def test_success_probability(self):
        assert analysis.ofa_success_probability(999) == pytest.approx(1 - 2 / 1000)
        # The guarantee is vacuous for k = 1 (probability 0) and grows towards 1.
        assert analysis.ofa_success_probability(1) == 0.0
        assert analysis.ofa_success_probability(3) == pytest.approx(0.5)

    def test_tau_formula(self):
        assert analysis.ofa_round_threshold_tau(99, delta=2.72) == pytest.approx(
            300 * 2.72 * math.log(100)
        )

    def test_gamma_positive_in_admissible_range(self):
        for delta in (2.72, 2.8, 2.99):
            assert analysis.ofa_gamma(delta) > 0

    def test_gamma_undefined_at_two(self):
        with pytest.raises(ValueError):
            analysis.ofa_gamma(2.0)

    def test_bt_threshold_is_logarithmic(self):
        m_small = analysis.ofa_bt_threshold_M(10**3)
        m_large = analysis.ofa_bt_threshold_M(10**6)
        assert m_large / m_small == pytest.approx(math.log(1 + 10**6) / math.log(1 + 10**3), rel=0.01)

    def test_bt_threshold_requires_delta_above_e(self):
        with pytest.raises(ValueError):
            analysis.ofa_bt_threshold_M(100, delta=2.0)

    def test_leading_constant_requires_admissible_delta(self):
        with pytest.raises(ValueError):
            analysis.ofa_leading_constant(2.0)


class TestExpBackonBackoffAnalysis:
    def test_leading_constant_matches_table1(self):
        """Table 1's Analysis column reports 14.9 for Exp Back-on/Back-off."""
        assert analysis.ebb_leading_constant(0.366) == pytest.approx(14.93, abs=0.01)

    def test_makespan_bound_linear(self):
        assert analysis.ebb_makespan_bound(1_000) == pytest.approx(14_928, rel=1e-3)

    def test_lemma1_threshold_grows_with_beta_and_k(self):
        assert analysis.ebb_lemma1_threshold(1_000, beta=2.0) > analysis.ebb_lemma1_threshold(
            1_000, beta=1.0
        )
        assert analysis.ebb_lemma1_threshold(10**6) > analysis.ebb_lemma1_threshold(10**3)

    def test_lemma1_threshold_explodes_near_inverse_e(self):
        assert analysis.ebb_lemma1_threshold(1_000, delta=0.36) > analysis.ebb_lemma1_threshold(
            1_000, delta=0.2
        )

    def test_lemma1_failure_probability_decreases_with_m(self):
        # Use a delta comfortably below 1/e: at the paper's delta = 0.366 the
        # (1 - e*delta)^2 factor is so small that the bound is vacuous (= 1)
        # for any m reachable in simulation, which is expected.
        assert analysis.ebb_lemma1_failure_probability(
            5_000, delta=0.2
        ) < analysis.ebb_lemma1_failure_probability(500, delta=0.2)
        assert analysis.ebb_lemma1_failure_probability(500, delta=EBB_DELTA_DEFAULT) == 1.0

    def test_delta_range_enforced(self):
        with pytest.raises(ValueError):
            analysis.ebb_leading_constant(0.5)
        with pytest.raises(ValueError):
            analysis.ebb_lemma1_threshold(100, delta=1 / math.e)


class TestLogFailsAdaptiveAnalysis:
    def test_constants_match_table1(self):
        """Table 1's Analysis column reports 7.8 (xi_t=1/2) and 4.4 (xi_t=1/10)."""
        assert analysis.lfa_leading_constant(0.5) == pytest.approx(7.8, abs=0.05)
        assert analysis.lfa_leading_constant(0.1) == pytest.approx(4.4, abs=0.05)

    def test_makespan_bound_uses_papers_epsilon_by_default(self):
        k = 1_000
        explicit = analysis.lfa_makespan_bound(k, xi_t=0.5, epsilon=1 / (k + 1))
        assert analysis.lfa_makespan_bound(k, xi_t=0.5) == pytest.approx(explicit)

    def test_xi_t_range(self):
        with pytest.raises(ValueError):
            analysis.lfa_leading_constant(0.0)
        with pytest.raises(ValueError):
            analysis.lfa_leading_constant(1.0)


class TestOtherBaselines:
    def test_llib_ratio_slowly_growing(self):
        small = analysis.llib_ratio_estimate(10**3)
        large = analysis.llib_ratio_estimate(10**7)
        assert large >= small
        assert large < 5 * small  # extremely slow growth

    def test_fair_optimum_is_e(self):
        assert analysis.fair_protocol_optimal_ratio() == pytest.approx(math.e)

    def test_lower_bound(self):
        assert analysis.lower_bound_steps(123) == 123
        with pytest.raises(ValueError):
            analysis.lower_bound_steps(0)
