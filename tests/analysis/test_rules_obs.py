"""OBS001: no ``print()`` in library code — fixture-driven rule tests."""

from __future__ import annotations

import textwrap

from repro.analysis.core import available_rules, run_lint


def lint_snippet(tmp_path, relpath, source, rules=("OBS001",)):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return run_lint([path], rules=list(rules), root=tmp_path).findings


class TestNoPrintInLibraryRule:
    def test_registered(self):
        assert "OBS001" in available_rules()

    def test_print_in_library_module_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/engine/fake.py",
            """
            def report(x):
                print(x)
            """,
        )
        assert [f.rule for f in findings] == ["OBS001"]
        assert "repro.obs.get_logger" in findings[0].message

    def test_cli_module_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/cli.py",
            """
            def main():
                print("usage: ...")
            """,
        )
        assert findings == ()

    def test_textplot_module_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/util/textplot.py",
            """
            def render():
                print("|####|")
            """,
        )
        assert findings == ()

    def test_non_repro_file_out_of_scope(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "scripts/tool.py",
            """
            print("hello")
            """,
        )
        assert findings == ()

    def test_noqa_suppresses(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/experiments/fake.py",
            """
            def main():
                print("the artefact")  # repro: noqa[OBS001] - stdout is the artefact
            """,
        )
        assert findings == ()

    def test_docstring_example_not_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/service/fake.py",
            '''
            """Example::

                print(payload["mean_makespan"])
            """

            def quiet():
                return None
            ''',
        )
        assert findings == ()

    def test_shadowed_print_method_not_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/service/fake.py",
            """
            def report(printer):
                printer.print("ok")
            """,
        )
        assert findings == ()

    def test_repo_library_tree_is_print_clean(self):
        from pathlib import Path

        src = Path(__file__).resolve().parents[2] / "src"
        report = run_lint([src], rules=["OBS001"], root=src.parent)
        assert report.findings == ()
