"""Tests for the balls-in-bins occupancy statistics (Lemma 1 machinery)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.balls_in_bins import (
    collision_probability_upper_bound,
    expected_singletons,
    sample_singletons,
    singleton_fraction_lower_tail,
    singleton_probability,
)


class TestSingletonProbability:
    def test_single_ball(self):
        assert singleton_probability(1, 10) == 1.0

    def test_formula(self):
        assert singleton_probability(3, 4) == pytest.approx((3 / 4) ** 2)

    def test_equal_balls_and_bins_at_least_inverse_e(self):
        """The proof of Lemma 1 uses (1/m)(1-1/m)^(m-1) >= 1/(em)."""
        for m in (2, 5, 20, 200, 5_000):
            assert singleton_probability(m, m) >= 1.0 / math.e

    def test_tends_to_inverse_e(self):
        assert singleton_probability(100_000, 100_000) == pytest.approx(1 / math.e, rel=1e-3)

    def test_more_bins_higher_probability(self):
        assert singleton_probability(10, 20) > singleton_probability(10, 10)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            singleton_probability(0, 5)
        with pytest.raises(ValueError):
            singleton_probability(5, 0)


class TestExpectedSingletons:
    def test_formula(self):
        assert expected_singletons(4, 4) == pytest.approx(4 * (3 / 4) ** 3)

    def test_matches_monte_carlo(self):
        rng = np.random.default_rng(0)
        m, w = 200, 200
        samples = sample_singletons(m, w, runs=400, rng=rng)
        assert samples.mean() == pytest.approx(expected_singletons(m, w), rel=0.05)

    def test_monotone_in_bins(self):
        assert expected_singletons(50, 100) > expected_singletons(50, 50)


class TestSingletonLowerTail:
    def test_bound_is_probability(self):
        assert 0.0 <= singleton_fraction_lower_tail(100, 0.2) <= 1.0

    def test_decreases_with_m(self):
        assert singleton_fraction_lower_tail(5_000, 0.2) < singleton_fraction_lower_tail(500, 0.2)

    def test_matches_lemma1_threshold(self):
        """At m = tau(k, delta, beta) the bound is at most 1/k^beta (Lemma 1)."""
        from repro.core.analysis import ebb_lemma1_threshold

        for k, beta in ((1_000, 1.0), (100_000, 2.0)):
            delta = 0.2
            tau = ebb_lemma1_threshold(k, delta, beta)
            m = int(math.ceil(tau))
            assert singleton_fraction_lower_tail(m, delta) <= 1.0 / k**beta * (1 + 1e-9)

    def test_requires_w_at_least_m(self):
        with pytest.raises(ValueError):
            singleton_fraction_lower_tail(10, 0.2, w=5)

    def test_delta_range(self):
        with pytest.raises(ValueError):
            singleton_fraction_lower_tail(10, 0.5)

    def test_empirically_conservative(self):
        """The analytic tail bound must upper-bound the Monte-Carlo frequency."""
        m, delta = 400, 0.3
        rng = np.random.default_rng(1)
        samples = sample_singletons(m, m, runs=500, rng=rng)
        empirical = float(np.mean(samples <= delta * m))
        assert empirical <= singleton_fraction_lower_tail(m, delta) + 0.05


class TestCollisionUnionBound:
    def test_zero_for_single_ball(self):
        assert collision_probability_upper_bound(1, 10) == 0.0

    def test_formula(self):
        assert collision_probability_upper_bound(4, 100) == pytest.approx(6 / 100)

    def test_clipped_at_one(self):
        assert collision_probability_upper_bound(100, 10) == 1.0

    def test_empirically_conservative(self):
        """P(some bin has >= 2 balls) <= C(m,2)/w, checked by simulation."""
        m, w = 10, 2_000
        rng = np.random.default_rng(2)
        collisions = 0
        runs = 2_000
        for _ in range(runs):
            occupancy = np.bincount(rng.integers(0, w, size=m), minlength=w)
            collisions += int(occupancy.max() >= 2)
        assert collisions / runs <= collision_probability_upper_bound(m, w) + 0.02


class TestSampler:
    def test_counts_within_bounds(self):
        samples = sample_singletons(10, 10, runs=50, rng=np.random.default_rng(3))
        assert (samples >= 0).all() and (samples <= 10).all()

    def test_run_count(self):
        assert len(sample_singletons(5, 5, runs=7, rng=np.random.default_rng(4))) == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_singletons(5, 5, runs=0)
