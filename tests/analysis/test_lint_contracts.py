"""Import-time registry-contract rules (REG001-004).

The conforming side is the repository itself: the live registries must pass
every contract rule.  The violating side injects fake modules/classes and
checks each contract failure is reported.
"""

from __future__ import annotations

import sys
import types

import pytest

from repro.analysis.rules_registry import (
    EngineContractRule,
    FusedKernelContractRule,
    ProtocolContractRule,
    StoreContractRule,
)


class TestRealTreeIsClean:
    @pytest.mark.parametrize(
        "rule_cls",
        [EngineContractRule, ProtocolContractRule, StoreContractRule, FusedKernelContractRule],
    )
    def test_registries_satisfy_their_contracts(self, rule_cls):
        assert list(rule_cls().check_project()) == []


@pytest.fixture
def fake_engine_module():
    """Inject a module into repro.engine holding one violating engine class."""
    name = "repro.engine._lint_contract_fixture"
    module = types.ModuleType(name)
    sys.modules[name] = module
    try:
        yield module
    finally:
        sys.modules.pop(name, None)


class TestEngineContract:
    def test_engine_without_capabilities_is_flagged(self, fake_engine_module):
        class BogusEngine:
            name = "bogus"

        BogusEngine.__module__ = fake_engine_module.__name__
        fake_engine_module.BogusEngine = BogusEngine
        findings = list(EngineContractRule().check_project())
        assert len(findings) == 1
        assert "EngineCapabilities" in findings[0].message

    def test_unregistered_engine_is_flagged(self, fake_engine_module):
        from repro.engine.registry import EngineCapabilities

        class StrayEngine:
            name = "stray-never-registered"
            capabilities = EngineCapabilities(protocol_kinds=frozenset({"fair"}))

        StrayEngine.__module__ = fake_engine_module.__name__
        fake_engine_module.StrayEngine = StrayEngine
        findings = list(EngineContractRule().check_project())
        assert len(findings) == 1
        assert "not registered" in findings[0].message

    def test_helper_classes_are_ignored(self, fake_engine_module):
        class NotAnEngineHelper:  # name does not end in "Engine"
            pass

        NotAnEngineHelper.__module__ = fake_engine_module.__name__
        fake_engine_module.NotAnEngineHelper = NotAnEngineHelper
        assert list(EngineContractRule().check_project()) == []


class TestProtocolContract:
    def test_invalid_kind_is_flagged(self, monkeypatch):
        import repro.protocols as protocols

        class WeirdProtocol:
            name = "weird"
            protocol_kind = "quantum"

        monkeypatch.setattr(protocols, "available_protocols", lambda: ["weird"])
        monkeypatch.setattr(protocols, "get_protocol_class", lambda name: WeirdProtocol)
        monkeypatch.setattr(protocols, "build_protocol", lambda name, k: WeirdProtocol())
        findings = list(ProtocolContractRule().check_project())
        assert len(findings) == 1
        assert "invalid protocol_kind" in findings[0].message

    def test_broken_round_trip_is_flagged(self, monkeypatch):
        import repro.protocols as protocols

        class FragileProtocol:
            name = "fragile"
            protocol_kind = "fair"

        def explode(name, k):
            raise RuntimeError("spec cannot rebuild this")

        monkeypatch.setattr(protocols, "available_protocols", lambda: ["fragile"])
        monkeypatch.setattr(protocols, "get_protocol_class", lambda name: FragileProtocol)
        monkeypatch.setattr(protocols, "build_protocol", explode)
        findings = list(ProtocolContractRule().check_project())
        assert len(findings) == 1
        assert "does not round-trip" in findings[0].message

    def test_wrong_class_round_trip_is_flagged(self, monkeypatch):
        import repro.protocols as protocols

        class DeclaredProtocol:
            name = "declared"
            protocol_kind = "fair"

        class OtherProtocol:
            pass

        monkeypatch.setattr(protocols, "available_protocols", lambda: ["declared"])
        monkeypatch.setattr(protocols, "get_protocol_class", lambda name: DeclaredProtocol)
        monkeypatch.setattr(protocols, "build_protocol", lambda name, k: OtherProtocol())
        findings = list(ProtocolContractRule().check_project())
        assert len(findings) == 1
        assert "returned OtherProtocol" in findings[0].message


class TestStoreContract:
    def test_non_subclass_backend_is_flagged(self, monkeypatch):
        import repro.scenarios.store as store

        class Impostor:
            pass

        monkeypatch.setattr(store, "available_store_backends", lambda: ["impostor"])
        monkeypatch.setattr(store, "store_backend_class", lambda name: Impostor)
        findings = list(StoreContractRule().check_project())
        assert len(findings) == 1
        assert "not a StoreBackend subclass" in findings[0].message

    def test_abstract_backend_is_flagged(self, monkeypatch):
        import repro.scenarios.store as store

        class HalfDone(store.StoreBackend):
            pass  # implements nothing

        monkeypatch.setattr(store, "available_store_backends", lambda: ["half"])
        monkeypatch.setattr(store, "store_backend_class", lambda name: HalfDone)
        findings = list(StoreContractRule().check_project())
        assert len(findings) == 1
        assert "abstract" in findings[0].message

    def test_signature_drift_is_flagged(self, monkeypatch):
        import repro.scenarios.store as store

        abstract = sorted(store.StoreBackend.__abstractmethods__)
        assert abstract, "StoreBackend should declare abstract methods"

        class Drifted(store.StoreBackend):
            pass

        # Implement every abstract method compatibly except the first, whose
        # positional parameter is renamed.
        first = abstract[0]
        for method_name in abstract:
            base_sig_names = [
                p for p in __import__("inspect").signature(
                    getattr(store.StoreBackend, method_name)
                ).parameters
            ]
            renamed = [
                ("zzz_" + n if method_name == first and i == 1 else n)
                for i, n in enumerate(base_sig_names)
            ]
            namespace: dict = {}
            exec(  # build a def with the (possibly renamed) parameter list
                f"def {method_name}({', '.join(renamed)}): pass", namespace
            )
            setattr(Drifted, method_name, namespace[method_name])
        Drifted.__abstractmethods__ = frozenset()

        monkeypatch.setattr(store, "available_store_backends", lambda: ["drifted"])
        monkeypatch.setattr(store, "store_backend_class", lambda name: Drifted)
        findings = list(StoreContractRule().check_project())
        assert len(findings) == 1
        assert "not call-compatible" in findings[0].message

    def test_store_backend_class_lookup(self):
        from repro.scenarios.store import store_backend_class

        for name in ("jsonl", "sqlite"):
            assert store_backend_class(name).__name__
        with pytest.raises(ValueError, match="unknown store backend"):
            store_backend_class("nope")


class TestFusedKernelContract:
    @staticmethod
    def _install(monkeypatch, protocol_cls):
        import repro.protocols as protocols

        monkeypatch.setattr(protocols, "available_protocols", lambda: [protocol_cls.name])
        monkeypatch.setattr(protocols, "get_protocol_class", lambda name: protocol_cls)
        monkeypatch.setattr(protocols, "build_protocol", lambda name, k: protocol_cls())

    def test_fair_batch_kernel_without_fused_hook_is_flagged(self, monkeypatch):
        class HalfBatched:
            name = "half-batched"
            protocol_kind = "fair"

            def make_batch_state(self, reps):
                return object()  # has a per-cell kernel...

            def spawn(self):
                return HalfBatched()

            @classmethod
            def make_fused_batch_state(cls, prototypes, counts):
                return None  # ...but no per-row hook

        self._install(monkeypatch, HalfBatched)
        findings = list(FusedKernelContractRule().check_project())
        assert len(findings) == 1
        assert "make_fused_batch_state" in findings[0].message

    def test_fair_fused_hook_raising_is_flagged(self, monkeypatch):
        class ExplodingFusion:
            name = "exploding-fusion"
            protocol_kind = "fair"

            def make_batch_state(self, reps):
                return object()

            def spawn(self):
                return ExplodingFusion()

            @classmethod
            def make_fused_batch_state(cls, prototypes, counts):
                raise RuntimeError("rows not wired")

        self._install(monkeypatch, ExplodingFusion)
        findings = list(FusedKernelContractRule().check_project())
        assert len(findings) == 1
        assert "raises" in findings[0].message

    def test_window_kernel_without_schedule_key_is_flagged(self, monkeypatch):
        class KeylessWindow:
            name = "keyless-window"
            protocol_kind = "windowed"

            def make_window_batch_state(self, reps):
                return object()

            def fused_schedule_key(self):
                return None

        self._install(monkeypatch, KeylessWindow)
        findings = list(FusedKernelContractRule().check_project())
        assert len(findings) == 1
        assert "fused_schedule_key" in findings[0].message

    def test_protocol_without_batch_kernel_is_exempt(self, monkeypatch):
        class PerRunOnly:
            name = "per-run-only"
            protocol_kind = "fair"

            def make_batch_state(self, reps):
                return None  # no per-cell kernel, so nothing to fuse

        self._install(monkeypatch, PerRunOnly)
        assert list(FusedKernelContractRule().check_project()) == []
