"""The lint framework itself: findings, suppression, cache, baseline, registry."""

from __future__ import annotations

import json

import pytest

from repro.analysis.core import (
    Baseline,
    Finding,
    available_rules,
    load_module,
    rule_class,
    rule_classes,
    run_lint,
)


def write(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return path


class TestFinding:
    def test_ordering_is_by_location(self):
        a = Finding("a.py", 1, "X001", "m")
        b = Finding("a.py", 2, "X001", "m")
        c = Finding("b.py", 1, "X001", "m")
        assert sorted([c, b, a]) == [a, b, c]

    def test_fingerprint_excludes_line(self):
        a = Finding("a.py", 1, "X001", "m")
        b = Finding("a.py", 99, "X001", "m")
        assert a.fingerprint == b.fingerprint

    def test_format_and_dict_round_trip(self):
        finding = Finding("pkg/mod.py", 7, "RND001", "boom")
        assert finding.format() == "pkg/mod.py:7: RND001 boom"
        assert finding.to_dict() == {
            "path": "pkg/mod.py",
            "line": 7,
            "rule": "RND001",
            "message": "boom",
        }


class TestRegistry:
    def test_builtin_rules_are_registered(self):
        ids = available_rules()
        for expected in (
            "RND001", "CLK001", "LCK001", "LCK002",
            "EXC001", "EXC002", "EXC003",
            "ANN001", "ANN002",
            "REG001", "REG002", "REG003", "REG004",
        ):
            assert expected in ids

    def test_rule_classes_declare_metadata(self):
        for cls in rule_classes():
            assert cls.id and cls.name and cls.description

    def test_unknown_rule_is_a_value_error(self):
        with pytest.raises(ValueError, match="unknown rule"):
            rule_class("NOPE999")


class TestModuleLoading:
    def test_module_name_from_repro_root(self, tmp_path):
        path = write(tmp_path, "repro/engine/fake.py", "x = 1\n")
        info = load_module(path)
        assert info.module == "repro.engine.fake"

    def test_module_name_outside_repro_tree(self, tmp_path):
        path = write(tmp_path, "standalone.py", "x = 1\n")
        assert load_module(path).module == "standalone"

    def test_cache_serves_unchanged_files(self, tmp_path):
        path = write(tmp_path, "m.py", "x = 1\n")
        first = load_module(path)
        assert load_module(path) is first

    def test_cache_invalidates_on_content_change(self, tmp_path):
        path = write(tmp_path, "m.py", "x = 1\n")
        first = load_module(path)
        path.write_text("x = 1  # changed\n", encoding="utf-8")
        second = load_module(path)
        assert second is not first
        assert "changed" in second.source

    def test_noqa_parsing(self, tmp_path):
        path = write(
            tmp_path,
            "m.py",
            "a = 1  # repro: noqa\n"
            "b = 2  # repro: noqa[CLK001]\n"
            "c = 3  # repro: noqa[CLK001, RND001]\n"
            "d = 4\n",
        )
        info = load_module(path)
        assert info.suppressed(1, "ANYTHING")
        assert info.suppressed(2, "CLK001") and not info.suppressed(2, "RND001")
        assert info.suppressed(3, "RND001")
        assert not info.suppressed(4, "CLK001")


class TestRunLint:
    def test_parse_error_is_a_finding_not_a_crash(self, tmp_path):
        write(tmp_path, "bad.py", "def broken(:\n")
        report = run_lint([tmp_path], rules=["EXC001"], root=tmp_path)
        assert [f.rule for f in report.findings] == ["parse-error"]

    def test_non_python_target_is_rejected(self, tmp_path):
        target = write(tmp_path, "notes.txt", "hello")
        with pytest.raises(ValueError, match="neither a directory nor a .py"):
            run_lint([target], rules=["EXC001"])

    def test_pycache_is_skipped(self, tmp_path):
        write(tmp_path, "__pycache__/junk.py", "try:\n    pass\nexcept:\n    pass\n")
        report = run_lint([tmp_path], rules=["EXC001"], root=tmp_path)
        assert report.files == 0 and report.clean

    def test_report_paths_are_relative_to_root(self, tmp_path):
        write(tmp_path, "pkg/mod.py", "try:\n    pass\nexcept:\n    pass\n")
        report = run_lint([tmp_path], rules=["EXC001"], root=tmp_path)
        assert report.findings[0].path == "pkg/mod.py"

    def test_suppressed_findings_are_counted_not_reported(self, tmp_path):
        write(
            tmp_path,
            "m.py",
            "try:\n    pass\nexcept:  # repro: noqa[EXC001]\n    pass\n",
        )
        report = run_lint([tmp_path], rules=["EXC001"], root=tmp_path)
        assert report.clean and report.suppressed == 1


class TestBaseline:
    SOURCE = "try:\n    pass\nexcept:\n    pass\n"

    def test_round_trip_absorbs_existing_findings(self, tmp_path):
        write(tmp_path, "m.py", self.SOURCE)
        report = run_lint([tmp_path], rules=["EXC001"], root=tmp_path)
        assert len(report.findings) == 1
        baseline = Baseline.from_findings(report.findings)
        again = run_lint([tmp_path], rules=["EXC001"], baseline=baseline, root=tmp_path)
        assert again.clean and again.baselined == 1

    def test_baseline_is_a_budget_not_a_blanket(self, tmp_path):
        write(tmp_path, "m.py", self.SOURCE)
        report = run_lint([tmp_path], rules=["EXC001"], root=tmp_path)
        baseline = Baseline.from_findings(report.findings)
        # A second occurrence of the same fingerprint exceeds the budget.
        write(tmp_path, "m.py", self.SOURCE + "\ntry:\n    pass\nexcept:\n    pass\n")
        again = run_lint([tmp_path], rules=["EXC001"], baseline=baseline, root=tmp_path)
        assert len(again.findings) == 1 and again.baselined == 1

    def test_save_and_load(self, tmp_path):
        baseline = Baseline({"EXC001::m.py::bare `except:`": 2})
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert loaded.counts == baseline.counts
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["version"] == 1

    def test_missing_baseline_file_is_empty(self, tmp_path):
        assert Baseline.load(tmp_path / "nope.json").counts == {}
