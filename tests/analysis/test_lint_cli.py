"""The ``repro lint`` CLI: formats, exit codes, baseline workflow, determinism."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"

BAD_SOURCE = "try:\n    pass\nexcept:\n    pass\n"


@pytest.fixture
def bad_tree(tmp_path):
    path = tmp_path / "repro" / "util" / "fake.py"
    path.parent.mkdir(parents=True)
    path.write_text(BAD_SOURCE, encoding="utf-8")
    return tmp_path


def run_cli(*args):
    return main(["lint", *args])


class TestExitCodes:
    def test_findings_exit_1(self, bad_tree, capsys):
        assert run_cli(str(bad_tree), "--rule", "EXC001") == 1
        out = capsys.readouterr().out
        assert "EXC001" in out and "1 finding(s)" in out

    def test_clean_exit_0(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
        assert run_cli(str(tmp_path), "--rule", "EXC001") == 0

    def test_unknown_rule_exit_2(self, tmp_path, capsys):
        assert run_cli(str(tmp_path), "--rule", "NOPE999") == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_bad_target_exit_2(self, tmp_path, capsys):
        target = tmp_path / "notes.txt"
        target.write_text("hi", encoding="utf-8")
        assert run_cli(str(target)) == 2


class TestOutput:
    def test_json_format_is_machine_readable(self, bad_tree, capsys):
        assert run_cli(str(bad_tree), "--rule", "EXC001", "--format", "json") == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False
        assert payload["findings"][0]["rule"] == "EXC001"
        assert payload["rules"] == ["EXC001"]

    def test_list_rules(self, capsys):
        assert run_cli("--list-rules") == 0
        out = capsys.readouterr().out
        for rule_id in ("RND001", "CLK001", "LCK001", "EXC001", "ANN001", "REG001"):
            assert rule_id in out


class TestBaselineWorkflow:
    def test_write_then_absorb(self, bad_tree, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert run_cli(str(bad_tree), "--rule", "EXC001",
                       "--baseline", str(baseline), "--write-baseline") == 0
        assert baseline.exists()
        # With the recorded baseline the same tree is clean...
        assert run_cli(str(bad_tree), "--rule", "EXC001",
                       "--baseline", str(baseline)) == 0
        assert "1 baselined" in capsys.readouterr().out
        # ...but a *new* occurrence still fails.
        extra = bad_tree / "repro" / "util" / "more.py"
        extra.write_text(BAD_SOURCE, encoding="utf-8")
        assert run_cli(str(bad_tree), "--rule", "EXC001",
                       "--baseline", str(baseline)) == 1


class TestRepositoryTree:
    """The acceptance criteria: the shipped tree lints clean, deterministically."""

    def test_src_is_lint_clean(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", "src", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True and payload["files"] > 50

    def test_two_runs_produce_identical_json(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        main(["lint", "src", "--format", "json"])
        first = capsys.readouterr().out
        main(["lint", "src", "--format", "json"])
        second = capsys.readouterr().out
        assert first == second
