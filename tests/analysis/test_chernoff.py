"""Tests for the concentration-bound helpers."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.chernoff import (
    chernoff_lower_tail,
    chernoff_upper_tail,
    hoeffding_bound,
    poissonisation_factor,
)


class TestChernoffLowerTail:
    def test_is_probability(self):
        assert 0.0 < chernoff_lower_tail(100.0, 0.5) < 1.0

    def test_decreasing_in_mu(self):
        assert chernoff_lower_tail(1_000.0, 0.2) < chernoff_lower_tail(10.0, 0.2)

    def test_decreasing_in_phi(self):
        assert chernoff_lower_tail(100.0, 0.9) < chernoff_lower_tail(100.0, 0.1)

    def test_lemma5_instance(self):
        """The bound used in Lemma 5: phi = 1/6, mu = tau/delta with tau = 300 delta ln(1+k)."""
        k, delta = 1_000, 2.72
        tau = 300 * delta * math.log(1 + k)
        bound = chernoff_lower_tail(tau / delta, 1.0 / 6.0)
        assert bound < math.exp(-2 * math.log(1 + k))  # the paper's e^{-2 ln(1+k)} target

    def test_phi_range(self):
        with pytest.raises(ValueError):
            chernoff_lower_tail(10.0, 0.0)
        with pytest.raises(ValueError):
            chernoff_lower_tail(10.0, 1.0)

    def test_empirically_valid_for_binomial(self):
        """Check the bound against a simulated Binomial(n, p) lower tail."""
        n, p, phi = 400, 0.25, 0.3
        mu = n * p
        rng = np.random.default_rng(0)
        samples = rng.binomial(n, p, size=20_000)
        empirical = float(np.mean(samples <= (1 - phi) * mu))
        assert empirical <= chernoff_lower_tail(mu, phi)


class TestChernoffUpperTail:
    def test_is_probability(self):
        assert 0.0 < chernoff_upper_tail(50.0, 0.5) < 1.0

    def test_phi_range(self):
        with pytest.raises(ValueError):
            chernoff_upper_tail(10.0, 1.5)

    def test_empirically_valid_for_binomial(self):
        n, p, phi = 400, 0.25, 0.3
        mu = n * p
        rng = np.random.default_rng(1)
        samples = rng.binomial(n, p, size=20_000)
        empirical = float(np.mean(samples >= (1 + phi) * mu))
        assert empirical <= chernoff_upper_tail(mu, phi)


class TestHoeffding:
    def test_clipped_at_one(self):
        assert hoeffding_bound(1, 0.01) == 1.0

    def test_decays_with_n(self):
        assert hoeffding_bound(10_000, 0.05) < hoeffding_bound(100, 0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            hoeffding_bound(0, 0.1)
        with pytest.raises(ValueError):
            hoeffding_bound(10, 0.0)


class TestPoissonisation:
    def test_formula(self):
        assert poissonisation_factor(4) == pytest.approx(2 * math.e)

    def test_monotone(self):
        assert poissonisation_factor(100) > poissonisation_factor(10)

    def test_validation(self):
        with pytest.raises(ValueError):
            poissonisation_factor(0)
