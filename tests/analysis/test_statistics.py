"""Tests for the run-statistics summaries."""

from __future__ import annotations

import math

import pytest

from repro.analysis.statistics import RunStatistics, summarize_makespans, summarize_ratios


class TestSummarizeMakespans:
    def test_basic_aggregates(self):
        stats = summarize_makespans([10, 20, 30])
        assert stats.count == 3
        assert stats.mean == 20
        assert stats.minimum == 10
        assert stats.maximum == 30
        assert stats.median == 20

    def test_std_is_sample_std(self):
        stats = summarize_makespans([10, 20, 30])
        assert stats.std == pytest.approx(10.0)

    def test_single_sample(self):
        stats = summarize_makespans([42])
        assert stats.std == 0.0
        assert stats.ci_half_width == 0.0
        assert stats.median == 42

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_makespans([])

    def test_confidence_interval_contains_mean(self):
        stats = summarize_makespans(list(range(100)))
        assert stats.ci_low <= stats.mean <= stats.ci_high

    def test_ci_shrinks_with_sample_size(self):
        small = summarize_makespans([10, 20, 30, 40])
        large = summarize_makespans([10, 20, 30, 40] * 25)
        assert large.ci_half_width < small.ci_half_width

    def test_percentiles_ordered(self):
        stats = summarize_makespans(list(range(1, 101)))
        assert stats.median <= stats.p90 <= stats.maximum

    def test_p90_value(self):
        stats = summarize_makespans(list(range(1, 12)))  # 1..11
        assert stats.p90 == pytest.approx(10.0)

    def test_unsorted_input_handled(self):
        assert summarize_makespans([3, 1, 2]).median == 2

    def test_coefficient_of_variation(self):
        stats = summarize_makespans([10, 20, 30])
        assert stats.coefficient_of_variation == pytest.approx(stats.std / stats.mean)

    def test_to_dict_keys(self):
        payload = summarize_makespans([1, 2, 3]).to_dict()
        assert set(payload) == {
            "count", "mean", "std", "min", "max", "median", "p90", "ci_low", "ci_high",
        }


class TestSummarizeRatios:
    def test_divides_by_k(self):
        stats = summarize_ratios([100, 200], k=100)
        assert stats.mean == pytest.approx(1.5)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            summarize_ratios([100], k=0)

    def test_matches_manual_division(self):
        makespans = [740, 750, 730]
        stats = summarize_ratios(makespans, k=100)
        assert stats.mean == pytest.approx(sum(makespans) / 3 / 100)
