"""Property-based tests for engine invariants.

Whatever the protocol parameters, seeds and network sizes, a solved simulation
must satisfy the structural invariants of the k-selection problem: exactly k
successful slots, a makespan of at least k and equal to the slot of the last
success plus one, and outcome counts that partition the simulated slots.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.trace import ExecutionTrace
from repro.core.constants import EBB_DELTA_MAX, OFA_DELTA_MAX, OFA_DELTA_MIN
from repro.core.exp_backon_backoff import ExpBackonBackoff
from repro.core.one_fail_adaptive import OneFailAdaptive
from repro.engine.fair_engine import FairEngine
from repro.engine.window_engine import WindowEngine
from repro.engine.slot_engine import SlotEngine

small_k = st.integers(min_value=1, max_value=60)
seeds = st.integers(min_value=0, max_value=2**31 - 1)
ofa_deltas = st.floats(
    min_value=OFA_DELTA_MIN + 1e-6, max_value=OFA_DELTA_MAX, exclude_min=True, allow_nan=False
)
ebb_deltas = st.floats(min_value=0.05, max_value=EBB_DELTA_MAX - 1e-6, allow_nan=False)


def check_solved_invariants(result, k):
    assert result.solved
    assert result.successes == k
    assert result.makespan >= k
    assert result.makespan <= result.slots_simulated
    assert result.successes + result.collisions + result.silences == result.slots_simulated


class TestFairEngineProperties:
    @given(k=small_k, seed=seeds, delta=ofa_deltas)
    @settings(max_examples=50, deadline=None)
    def test_solved_run_invariants(self, k, seed, delta):
        result = FairEngine().simulate(OneFailAdaptive(delta=delta), k, seed=seed)
        check_solved_invariants(result, k)

    @given(k=small_k, seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_trace_consistent_with_result(self, k, seed):
        trace = ExecutionTrace()
        result = FairEngine().simulate(OneFailAdaptive(), k, seed=seed, trace=trace)
        assert trace.successes == k
        assert trace.success_slots()[-1] + 1 == result.makespan


class TestWindowEngineProperties:
    @given(k=small_k, seed=seeds, delta=ebb_deltas)
    @settings(max_examples=50, deadline=None)
    def test_solved_run_invariants(self, k, seed, delta):
        result = WindowEngine().simulate(ExpBackonBackoff(delta=delta), k, seed=seed)
        assert result.solved
        assert result.successes == k
        assert result.makespan >= k
        assert result.makespan <= result.slots_simulated

    @given(k=small_k, seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_trace_successes_equal_k(self, k, seed):
        trace = ExecutionTrace()
        result = WindowEngine().simulate(ExpBackonBackoff(), k, seed=seed, trace=trace)
        assert trace.successes == k
        assert trace.success_slots()[-1] + 1 == result.makespan


class TestSlotEngineProperties:
    @given(k=st.integers(min_value=1, max_value=25), seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_solved_run_invariants_ofa(self, k, seed):
        result = SlotEngine().simulate(OneFailAdaptive(), k, seed=seed)
        check_solved_invariants(result, k)

    @given(k=st.integers(min_value=1, max_value=25), seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_solved_run_invariants_ebb(self, k, seed):
        result = SlotEngine().simulate(ExpBackonBackoff(), k, seed=seed)
        check_solved_invariants(result, k)

    @given(k=st.integers(min_value=1, max_value=20), seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_determinism(self, k, seed):
        first = SlotEngine().simulate(OneFailAdaptive(), k, seed=seed)
        second = SlotEngine().simulate(OneFailAdaptive(), k, seed=seed)
        assert first.makespan == second.makespan
        assert first.collisions == second.collisions
