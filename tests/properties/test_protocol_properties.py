"""Property-based tests (hypothesis) for protocol invariants.

These check the invariants the analysis relies on over the whole parameter
space and over arbitrary feedback histories, not just the happy path:

* transmission probabilities are always valid probabilities;
* One-fail Adaptive's density estimator never drops below its floor ``δ + 1``
  and moves exactly as Algorithm 1 dictates;
* windowed protocols transmit exactly once per window, whatever the schedule;
* Exp Back-on/Back-off's window schedule is exactly the sawtooth of
  Algorithm 2 for every admissible δ.
"""

from __future__ import annotations

import itertools
import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.model import Observation
from repro.core.constants import EBB_DELTA_MAX, OFA_DELTA_MAX, OFA_DELTA_MIN
from repro.core.exp_backon_backoff import ExpBackonBackoff
from repro.core.one_fail_adaptive import OneFailAdaptive
from repro.protocols.log_fails_adaptive import LogFailsAdaptive

# Strategy for feedback histories: True = a message was received in that slot.
feedback_history = st.lists(st.booleans(), min_size=0, max_size=300)

ofa_deltas = st.floats(
    min_value=OFA_DELTA_MIN + 1e-6,
    max_value=OFA_DELTA_MAX,
    exclude_min=True,
    allow_nan=False,
)

ebb_deltas = st.floats(
    min_value=1e-3,
    max_value=EBB_DELTA_MAX - 1e-6,
    allow_nan=False,
)


def replay(protocol, history):
    """Feed a reception/noise history to a protocol, slot by slot."""
    for slot, received in enumerate(history):
        yield slot, protocol.transmission_probability(slot)
        protocol.notify(
            Observation(slot=slot, transmitted=False, received=received, delivered=False)
        )


class TestOneFailAdaptiveProperties:
    @given(delta=ofa_deltas, history=feedback_history)
    @settings(max_examples=60, deadline=None)
    def test_probabilities_always_valid(self, delta, history):
        protocol = OneFailAdaptive(delta=delta)
        for _, probability in replay(protocol, history):
            assert 0.0 < probability <= 1.0

    @given(delta=ofa_deltas, history=feedback_history)
    @settings(max_examples=60, deadline=None)
    def test_estimator_never_below_floor(self, delta, history):
        protocol = OneFailAdaptive(delta=delta)
        for _ in replay(protocol, history):
            pass
        assert protocol.density_estimate >= delta + 1.0 - 1e-9

    @given(history=feedback_history)
    @settings(max_examples=60, deadline=None)
    def test_sigma_equals_number_of_receptions(self, history):
        protocol = OneFailAdaptive()
        for _ in replay(protocol, history):
            pass
        assert protocol.messages_received == sum(history)

    @given(delta=ofa_deltas, history=feedback_history)
    @settings(max_examples=60, deadline=None)
    def test_estimator_bounded_by_silent_at_steps(self, delta, history):
        """κ̃ can exceed its start only through the +1 of silent AT steps."""
        protocol = OneFailAdaptive(delta=delta)
        for _ in replay(protocol, history):
            pass
        at_steps = sum(1 for slot in range(len(history)) if not OneFailAdaptive.is_bt_step(slot))
        assert protocol.density_estimate <= delta + 1.0 + at_steps + 1e-9

    @given(history=feedback_history)
    @settings(max_examples=60, deadline=None)
    def test_bt_probability_depends_only_on_sigma(self, history):
        protocol = OneFailAdaptive()
        for _ in replay(protocol, history):
            pass
        sigma = protocol.messages_received
        expected = 1.0 / (1.0 + math.log2(sigma + 1))
        bt_slot = 2 * len(history) + 1  # any BT slot index beyond the history
        assert protocol.transmission_probability(bt_slot) == expected


class TestLogFailsAdaptiveProperties:
    @given(
        k=st.integers(min_value=2, max_value=10_000),
        xi_t=st.floats(min_value=0.05, max_value=0.9, allow_nan=False),
        history=feedback_history,
    )
    @settings(max_examples=60, deadline=None)
    def test_probabilities_always_valid(self, k, xi_t, history):
        protocol = LogFailsAdaptive.for_k(k, xi_t=xi_t)
        for _, probability in replay(protocol, history):
            assert 0.0 < probability <= 1.0

    @given(k=st.integers(min_value=2, max_value=10_000), history=feedback_history)
    @settings(max_examples=60, deadline=None)
    def test_estimator_at_least_one(self, k, history):
        protocol = LogFailsAdaptive.for_k(k)
        for _ in replay(protocol, history):
            pass
        assert protocol.density_estimate >= 1.0

    @given(xi_t=st.floats(min_value=0.05, max_value=0.95, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_bt_step_fraction_matches_xi_t(self, xi_t):
        protocol = LogFailsAdaptive(epsilon=0.01, xi_t=xi_t)
        horizon = 5_000
        fraction = sum(protocol.is_bt_step(slot) for slot in range(horizon)) / horizon
        assert abs(fraction - xi_t) < 0.01


class TestExpBackonBackoffProperties:
    @given(delta=ebb_deltas)
    @settings(max_examples=40, deadline=None)
    def test_schedule_matches_algorithm2(self, delta):
        protocol = ExpBackonBackoff(delta=delta)
        expected = []
        for phase in range(1, 6):
            w = float(2**phase)
            while w >= 1.0:
                expected.append(int(math.ceil(w)))
                w *= 1.0 - delta
        actual = list(itertools.islice(protocol.window_lengths(), len(expected)))
        assert actual == expected

    @given(delta=ebb_deltas, seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_exactly_one_transmission_per_window(self, delta, seed):
        protocol = ExpBackonBackoff(delta=delta)
        node = protocol.spawn()
        rng = np.random.default_rng(seed)
        lengths = list(itertools.islice(protocol.window_lengths(), 5))
        decisions = [node.will_transmit(slot, rng) for slot in range(sum(lengths))]
        start = 0
        for length in lengths:
            assert sum(decisions[start : start + length]) == 1
            start += length

    @given(delta=ebb_deltas)
    @settings(max_examples=40, deadline=None)
    def test_rounds_per_phase_nondecreasing(self, delta):
        protocol = ExpBackonBackoff(delta=delta)
        rounds = [protocol.rounds_in_phase(phase) for phase in range(1, 10)]
        assert all(a <= b for a, b in zip(rounds, rounds[1:]))
