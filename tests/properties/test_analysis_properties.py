"""Property-based tests for the analysis toolkit."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.balls_in_bins import (
    collision_probability_upper_bound,
    expected_singletons,
    singleton_probability,
)
from repro.analysis.chernoff import chernoff_lower_tail, chernoff_upper_tail, hoeffding_bound
from repro.analysis.statistics import summarize_makespans
from repro.core import analysis


class TestBallsInBinsProperties:
    @given(m=st.integers(min_value=1, max_value=5_000), w=st.integers(min_value=1, max_value=5_000))
    @settings(max_examples=100, deadline=None)
    def test_singleton_probability_in_unit_interval(self, m, w):
        assert 0.0 <= singleton_probability(m, w) <= 1.0

    @given(m=st.integers(min_value=1, max_value=2_000))
    @settings(max_examples=100, deadline=None)
    def test_expected_singletons_at_most_m_and_w(self, m):
        w = m
        value = expected_singletons(m, w)
        assert 0.0 <= value <= m

    @given(m=st.integers(min_value=2, max_value=3_000))
    @settings(max_examples=100, deadline=None)
    def test_lemma1_lower_bound_on_singleton_probability(self, m):
        """(1/m)(1 - 1/m)^{m-1} >= 1/(e m): the first inequality of Lemma 1's proof."""
        per_bin = (1.0 / m) * (1.0 - 1.0 / m) ** (m - 1)
        assert per_bin >= 1.0 / (math.e * m) - 1e-15

    @given(
        m=st.integers(min_value=1, max_value=1_000),
        w=st.integers(min_value=1, max_value=10_000),
    )
    @settings(max_examples=100, deadline=None)
    def test_collision_union_bound_in_unit_interval(self, m, w):
        assert 0.0 <= collision_probability_upper_bound(m, w) <= 1.0


class TestChernoffProperties:
    @given(mu=st.floats(min_value=0.1, max_value=1e6), phi=st.floats(min_value=0.01, max_value=0.99))
    @settings(max_examples=100, deadline=None)
    def test_lower_tail_in_unit_interval(self, mu, phi):
        assert 0.0 <= chernoff_lower_tail(mu, phi) <= 1.0

    @given(mu=st.floats(min_value=0.1, max_value=1e6), phi=st.floats(min_value=0.01, max_value=1.0))
    @settings(max_examples=100, deadline=None)
    def test_upper_tail_in_unit_interval(self, mu, phi):
        assert 0.0 <= chernoff_upper_tail(mu, phi) <= 1.0

    @given(n=st.integers(min_value=1, max_value=10**6), t=st.floats(min_value=1e-3, max_value=1.0))
    @settings(max_examples=100, deadline=None)
    def test_hoeffding_in_unit_interval(self, n, t):
        assert 0.0 <= hoeffding_bound(n, t) <= 1.0


class TestTheoremBoundProperties:
    @given(k=st.integers(min_value=1, max_value=10**7))
    @settings(max_examples=100, deadline=None)
    def test_ofa_bound_at_least_linear_term(self, k):
        assert analysis.ofa_makespan_bound(k) >= analysis.ofa_leading_constant() * k

    @given(k=st.integers(min_value=1, max_value=10**7))
    @settings(max_examples=100, deadline=None)
    def test_ofa_success_probability_valid(self, k):
        assert 0.0 <= analysis.ofa_success_probability(k) < 1.0

    @given(
        k=st.integers(min_value=1, max_value=10**7),
        delta=st.floats(min_value=0.01, max_value=0.36),
    )
    @settings(max_examples=100, deadline=None)
    def test_ebb_bound_is_monotone_in_k(self, k, delta):
        assert analysis.ebb_makespan_bound(k + 1, delta) > analysis.ebb_makespan_bound(k, delta)

    @given(
        xi_t=st.floats(min_value=0.01, max_value=0.99),
    )
    @settings(max_examples=100, deadline=None)
    def test_lfa_constant_exceeds_fair_optimum(self, xi_t):
        assert analysis.lfa_leading_constant(xi_t) > analysis.fair_protocol_optimal_ratio()


class TestStatisticsProperties:
    @given(samples=st.lists(st.integers(min_value=1, max_value=10**6), min_size=1, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_summary_orderings(self, samples):
        stats = summarize_makespans(samples)
        assert stats.minimum <= stats.median <= stats.maximum
        assert stats.minimum <= stats.mean <= stats.maximum
        assert stats.median <= stats.p90 <= stats.maximum
        assert stats.std >= 0.0

    @given(
        samples=st.lists(st.integers(min_value=1, max_value=10**6), min_size=2, max_size=200),
        shift=st.integers(min_value=1, max_value=1_000),
    )
    @settings(max_examples=100, deadline=None)
    def test_summary_translation_equivariance(self, samples, shift):
        base = summarize_makespans(samples)
        moved = summarize_makespans([sample + shift for sample in samples])
        assert math.isclose(moved.mean, base.mean + shift, rel_tol=1e-9, abs_tol=1e-6)
        assert math.isclose(moved.std, base.std, rel_tol=1e-6, abs_tol=1e-5)
