"""Repository-level pytest configuration.

Makes the ``src`` layout importable even when the package has not been
installed (useful in offline environments where ``pip install -e .`` may not
be able to build an editable wheel); an installed ``repro`` takes precedence
because site-packages appears earlier on ``sys.path`` only when the editable
install is present.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
